#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#ifdef BACP_AUDIT
#include <cstdio>
#include <cstdlib>

#include "audit/audit.hpp"
#include "audit/component_audit.hpp"
#endif

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/stats.hpp"
#include "partition/bank_aware.hpp"
#include "partition/static_policies.hpp"
#include "trace/spec2000.hpp"

namespace bacp::sim {

double CoreResult::l2_miss_ratio() const {
  const std::uint64_t accesses = l2_accesses();
  return accesses == 0
             ? 0.0
             : static_cast<double>(l2_misses()) / static_cast<double>(accesses);
}

CoreResult& CoreResult::set_instructions(double value) {
  metrics_.gauge("core.instructions").set(value);
  return *this;
}

CoreResult& CoreResult::set_cycles(double value) {
  metrics_.gauge("core.cycles").set(value);
  return *this;
}

CoreResult& CoreResult::set_cpi(double value) {
  metrics_.gauge("core.cpi").set(value);
  return *this;
}

CoreResult& CoreResult::set_l2_hits(std::uint64_t value) {
  metrics_.counter("core.l2_hits").set(value);
  return *this;
}

CoreResult& CoreResult::set_l2_misses(std::uint64_t value) {
  metrics_.counter("core.l2_misses").set(value);
  return *this;
}

CoreResult& CoreResult::set_allocated_ways(WayCount ways) {
  metrics_.counter("core.allocated_ways").set(ways);
  return *this;
}

CoreResult& CoreResult::set_workload(std::string name) {
  workload_ = std::move(name);
  return *this;
}

obs::Json CoreResult::to_json() const {
  obs::Json json = obs::Json::object();
  json.set("workload", workload_);
  json.set("metrics", metrics_.to_json());
  return json;
}

SystemResults& SystemResults::set_l2_accesses(std::uint64_t value) {
  metrics_.counter("sim.l2_accesses").set(value);
  return *this;
}

SystemResults& SystemResults::set_l2_misses(std::uint64_t value) {
  metrics_.counter("sim.l2_misses").set(value);
  return *this;
}

SystemResults& SystemResults::set_l2_miss_ratio(double value) {
  metrics_.gauge("sim.l2_miss_ratio").set(value);
  return *this;
}

SystemResults& SystemResults::set_mean_cpi(double value) {
  metrics_.gauge("sim.mean_cpi").set(value);
  return *this;
}

SystemResults& SystemResults::set_epochs(std::uint64_t value) {
  metrics_.counter("sim.epochs").set(value);
  return *this;
}

obs::Json SystemResults::to_json() const {
  obs::Json json = obs::Json::object();
  json.set("schema", std::uint64_t{1});
  json.set("metrics", metrics_.to_json());
  obs::Json cores = obs::Json::array();
  for (const auto& core : cores_) cores.push_back(core.to_json());
  json.set("cores", std::move(cores));
  json.set("epoch_series", epoch_series_.to_json());
  return json;
}

System::System(const SystemConfig& config, const trace::WorkloadMix& mix)
    : config_(config),
      mix_(mix),
      noc_(config.noc),
      dram_(config.dram),
      directory_(config.geometry.num_cores) {
  config_.validate();
  BACP_ASSERT(mix_.num_cores() == config_.geometry.num_cores,
              "mix size must match the core count");
  // A directory entry exists only while a block has an L1 copy, so the
  // table can never exceed the total L1 line count; sizing it up front
  // keeps its load factor low and the entry churn rehash-free.
  directory_.reserve(std::size_t{config_.geometry.num_cores} * config_.l1_sets *
                     config_.l1_ways);

  nuca::DnucaConfig l2_config;
  l2_config.geometry = config_.geometry;
  l2_config.sets_per_bank = config_.sets_per_bank;
  // The No-partition baseline is the shared CMP-DNUCA itself: hash
  // placement with gradual migration toward the requester (Section II),
  // not a partition-aggregation scheme.
  l2_config.aggregation = config_.policy == PolicyKind::NoPartition
                              ? nuca::AggregationKind::SharedDnuca
                              : config_.aggregation;
  l2_ = std::make_unique<nuca::DnucaCache>(l2_config, noc_);

  const auto& suite = trace::spec2000_suite();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const auto& model = suite.at(mix_.workload_indices[core]);

    cache::SetAssocCache::Config l1_config;
    l1_config.name = "L1.core" + std::to_string(core);
    l1_config.num_sets = config_.l1_sets;
    l1_config.ways = config_.l1_ways;
    l1_config.num_cores = 1;
    l1_.emplace_back(l1_config);

    trace::GeneratorConfig generator_config;
    generator_config.num_sets = config_.sets_per_bank;
    generator_config.max_depth = config_.geometry.total_ways();
    generator_config.core = core;
    generators_.push_back(std::make_unique<trace::SyntheticTraceGenerator>(
        model, generator_config, config_.seed));

    profilers_.push_back(std::make_unique<msa::StackProfiler>(config_.profiler));

    core::CoreTimerConfig timer_config;
    timer_config.base_cpi = model.base_cpi;
    timer_config.instructions_per_l2_access = 1000.0 / model.l2_apki;
    timer_config.mlp_window = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::lround(model.mlp)), 1,
        config_.mshr.entries_per_core);
    timer_config.gap_jitter = config_.gap_jitter;
    timer_config.seed = config_.seed ^ 0x5175ULL;
    timer_config.core = core;
    timers_.push_back(std::make_unique<core::CoreTimer>(timer_config));
  }

  streams_.resize(config_.geometry.num_cores);
  // Batch depth is a speed dial, never a behavior knob (see
  // set_batch_size); the env default reaches every driver, including ones
  // that build systems internally.
  set_batch_size(static_cast<std::uint32_t>(
      common::env_u64("BACP_BATCH", kDefaultBatchSize)));

  snapshots_.assign(config_.geometry.num_cores, CoreSnapshot{});
  last_epoch_instructions_.assign(config_.geometry.num_cores, 0.0);
  decayed_instructions_.assign(config_.geometry.num_cores, 0.0);
  active_.assign(config_.geometry.num_cores, 1);
  bound_workloads_ = mix_.workload_indices;
  apply_policy_plan();
  next_epoch_ = config_.epoch_cycles;
  reset_epoch_tracking();
}

void System::reset_in_place(const trace::WorkloadMix& mix) {
  BACP_ASSERT(mix.num_cores() == config_.geometry.num_cores,
              "mix size must match the core count");
  flush_streams();
  mix_ = mix;
  noc_.reset_in_place();
  dram_.reset_in_place();
  directory_.reset_in_place();
  l2_->reset_in_place();

  const auto& suite = trace::spec2000_suite();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const auto& model = suite.at(mix_.workload_indices[core]);
    l1_[core].reset_in_place();
    generators_[core]->reset_in_place(model, config_.seed);
    profilers_[core]->reset_in_place();

    // Same derivation as the constructor: the timer's gap model follows the
    // slot's new workload.
    core::CoreTimerConfig timer_config;
    timer_config.base_cpi = model.base_cpi;
    timer_config.instructions_per_l2_access = 1000.0 / model.l2_apki;
    timer_config.mlp_window = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::lround(model.mlp)), 1,
        config_.mshr.entries_per_core);
    timer_config.gap_jitter = config_.gap_jitter;
    timer_config.seed = config_.seed ^ 0x5175ULL;
    timer_config.core = core;
    timers_[core]->reset_in_place(timer_config);
  }
  // Streams were flushed above; batch_size_ is an execution knob and
  // deliberately survives the reset (like thread counts, it never affects
  // results).
  for (auto& stream : streams_) {
    stream.batch.size = 0;
    stream.cursor = 0;
  }

  allocation_history_.clear();
  std::fill(snapshots_.begin(), snapshots_.end(), CoreSnapshot{});
  std::fill(active_.begin(), active_.end(), 1);
  bound_workloads_ = mix_.workload_indices;
  std::fill(last_epoch_instructions_.begin(), last_epoch_instructions_.end(), 0.0);
  std::fill(decayed_instructions_.begin(), decayed_instructions_.end(), 0.0);
  apply_policy_plan();
  next_epoch_ = config_.epoch_cycles;
  epochs_ = 0;
  reset_epoch_tracking();
  audit_checkpoint("reset_in_place");
}

void System::apply_policy_plan() {
  switch (config_.policy) {
    case PolicyKind::NoPartition: {
      auto plan = partition::no_partition(config_.geometry);
      // Migration needs distance-ordered views: each core's view leads with
      // its Local bank so hits gradually pull lines toward the requester.
      for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
        auto& view = plan.assignment.banks_of_core[core];
        std::sort(view.begin(), view.end(), [&](BankId a, BankId b) {
          const auto ha = noc_.hops(core, a);
          const auto hb = noc_.hops(core, b);
          return ha != hb ? ha < hb : a < b;
        });
      }
      l2_->apply_assignment(plan.assignment);
      allocation_ = plan.allocation;
      break;
    }
    case PolicyKind::EqualPartition:
    case PolicyKind::BankAware:
    case PolicyKind::External: {
      // Bank-aware starts from the equal static plan; the first epoch's
      // profiles then drive the first dynamic reassignment. External also
      // starts equal — the driver's first install_partition() replaces it.
      const auto plan = partition::equal_partition(config_.geometry);
      l2_->apply_assignment(plan.assignment);
      allocation_ = plan.allocation;
      break;
    }
  }
}

void System::audit_checkpoint(const char* where) const {
#ifdef BACP_AUDIT
  audit::SystemView view;
  view.l2 = l2_.get();
  view.l1s = l1s();
  view.directory = &directory_;
  view.allocation = &allocation_;
  audit::AuditReport report = audit::audit_system_components(view);
  report.merge(audit::audit_noc_fabric(noc_));
  report.merge(audit::audit_dram_channel(dram_));
  report.merge(audit::audit_epoch_series(epoch_series_));
  for (const auto& generator : generators_)
    report.merge(audit::audit_trace_generator(*generator));
  for (const auto& profiler : profilers_)
    report.merge(audit::audit_stack_profiler(*profiler));
  for (const auto& timer : timers_)
    report.merge(audit::audit_core_timer(*timer));
  if (!report.ok()) {
    std::fprintf(stderr, "BACP_AUDIT failed at %s: %s\n", where,
                 report.to_string().c_str());
    std::abort();
  }
#else
  (void)where;
#endif
}

void System::run_epoch_boundary() {
  ++epochs_;
  if (config_.policy == PolicyKind::BankAware) {
    std::vector<msa::MissRatioCurve> curves;
    curves.reserve(profilers_.size());
    for (CoreId core = 0; core < profilers_.size(); ++core) {
      // Normalize each profile to misses-per-megainstruction. Raw per-epoch
      // counts weight cores by wall-clock request rate, which starves slow
      // memory-bound cores in a vicious cycle (few ways -> high CPI ->
      // few samples per epoch -> few ways). Per-instruction weighting is
      // what the paper's equal-instruction-slice evaluation measures. The
      // instruction window decays with the same half-life as the histogram
      // so numerator and denominator cover the same history.
      const double delta =
          timers_[core]->instructions() - last_epoch_instructions_[core];
      last_epoch_instructions_[core] = timers_[core]->instructions();
      const double window = std::max(1.0, decayed_instructions_[core] + delta);
      decayed_instructions_[core] = window * 0.5;
      curves.push_back(profilers_[core]->curve().scaled(1.0e6 / window));
    }
    const auto result = partition::bank_aware_partition(config_.geometry, curves);
    l2_->apply_assignment(result.assignment);
    allocation_ = result.allocation;
    allocation_history_.push_back(result.allocation);
  }
  // Histogram decay keeps the profile tracking the current phase.
  for (auto& profiler : profilers_) profiler->decay();
  // Record after any repartition so "core<N>.ways" reflects the allocation
  // installed at this boundary (matching allocation_history()).
  record_epoch_series();
  audit_checkpoint("epoch boundary");
}

void System::record_epoch_series() {
  epoch_series_.begin_epoch();
  const auto& l2_stats = l2_->stats();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    epoch_series_.record(epoch_handles_.ways[core],
                         static_cast<double>(allocation_.ways_per_core.at(core)));
    const double instructions =
        timers_[core]->instructions() - epoch_baseline_.instructions[core];
    const double cycles =
        static_cast<double>(timers_[core]->time()) - epoch_baseline_.cycles[core];
    epoch_series_.record(epoch_handles_.cpi[core],
                         instructions > 0.0 ? cycles / instructions : 0.0);
    epoch_baseline_.instructions[core] = timers_[core]->instructions();
    epoch_baseline_.cycles[core] = static_cast<double>(timers_[core]->time());
  }
  const auto delta = [](std::uint64_t now, std::uint64_t& baseline) {
    const std::uint64_t d = now - baseline;
    baseline = now;
    return static_cast<double>(d);
  };
  epoch_series_.record(epoch_handles_.promotions,
                       delta(l2_stats.promotions, epoch_baseline_.promotions));
  epoch_series_.record(epoch_handles_.demotions,
                       delta(l2_stats.demotions, epoch_baseline_.demotions));
  epoch_series_.record(epoch_handles_.offview_hits,
                       delta(l2_stats.offview_hits, epoch_baseline_.offview_hits));
  epoch_series_.record(epoch_handles_.dram_reads,
                       delta(dram_.stats().demand_reads, epoch_baseline_.dram_reads));
  epoch_series_.record(
      epoch_handles_.dram_writebacks,
      delta(dram_.stats().writebacks, epoch_baseline_.dram_writebacks));
  epoch_series_.record(
      epoch_handles_.noc_queue_cycles,
      delta(noc_.stats().total_queue_cycles, epoch_baseline_.noc_queue_cycles));
}

void System::reset_epoch_tracking() {
  epoch_series_.clear();
  epoch_handles_.ways.clear();
  epoch_handles_.cpi.clear();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const std::string prefix = "core" + std::to_string(core) + ".";
    epoch_handles_.ways.push_back(epoch_series_.intern(prefix + "ways"));
    epoch_handles_.cpi.push_back(epoch_series_.intern(prefix + "cpi"));
  }
  epoch_handles_.promotions = epoch_series_.intern("promotions");
  epoch_handles_.demotions = epoch_series_.intern("demotions");
  epoch_handles_.offview_hits = epoch_series_.intern("offview_hits");
  epoch_handles_.dram_reads = epoch_series_.intern("dram_reads");
  epoch_handles_.dram_writebacks = epoch_series_.intern("dram_writebacks");
  epoch_handles_.noc_queue_cycles = epoch_series_.intern("noc_queue_cycles");
  epoch_baseline_ = EpochBaseline{};
  epoch_baseline_.instructions.resize(config_.geometry.num_cores);
  epoch_baseline_.cycles.resize(config_.geometry.num_cores);
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    epoch_baseline_.instructions[core] = timers_[core]->instructions();
    epoch_baseline_.cycles[core] = static_cast<double>(timers_[core]->time());
  }
  epoch_baseline_.promotions = l2_->stats().promotions;
  epoch_baseline_.demotions = l2_->stats().demotions;
  epoch_baseline_.offview_hits = l2_->stats().offview_hits;
  epoch_baseline_.dram_reads = dram_.stats().demand_reads;
  epoch_baseline_.dram_writebacks = dram_.stats().writebacks;
  epoch_baseline_.noc_queue_cycles = noc_.stats().total_queue_cycles;
}

void System::set_batch_size(std::uint32_t batch) {
  batch_size_ = std::clamp<std::uint32_t>(batch, 1, trace::AccessBatch::kMaxSize);
}

trace::MemoryAccess System::next_access(CoreId core) {
  CoreStream& stream = streams_[core];
  if (stream.cursor >= stream.batch.size) {
    generators_[core]->next_batch(stream.batch, batch_size_);
    stream.cursor = 0;
    // Front-half lookahead over the fresh batch: the L2 residency probes
    // walk a multi-megabyte table, so a handful of prefetches here turns
    // the upcoming dependent misses into overlapped ones.
    const std::uint32_t lookahead = std::min<std::uint32_t>(8, stream.batch.size);
    for (std::uint32_t i = 0; i < lookahead; ++i) {
      l2_->prefetch(stream.batch.accesses[i].block);
    }
  }
  const trace::MemoryAccess access = stream.batch.accesses[stream.cursor++];
  if (stream.cursor < stream.batch.size) {
    const BlockAddress upcoming = stream.batch.accesses[stream.cursor].block;
    l1_[core].prefetch_set(upcoming);
    l2_->prefetch(upcoming);
  }
  return access;
}

void System::flush_stream(CoreId core) {
  CoreStream& stream = streams_[core];
  if (stream.batch.size == 0) return;
  generators_[core]->truncate_batch(stream.cursor);
  stream.batch.size = 0;
  stream.cursor = 0;
}

void System::flush_streams() {
  for (CoreId core = 0; core < streams_.size(); ++core) flush_stream(core);
}

Cycle System::serve_access(CoreId core, Cycle issue_time) {
  const auto access = next_access(core);

  // L1 lookup. The synthetic stream is the L2-intent stream, so L1 hits are
  // rare residual locality; their cost is the L1 latency only.
  if (l1_[core].access(access.block, 0, access.is_write).hit) {
    return issue_time + config_.l1_latency;
  }

  // L1 miss: the profiler shadows the L2 reference stream (Section III-A).
  profilers_[core]->observe(access.block);

  // Coherence: GetS/GetM to the directory. Workload address spaces are
  // disjoint by construction, so cross-core invalidations cannot occur in
  // these runs (the protocol paths are exercised by the unit tests).
  if (access.is_write) {
    directory_.on_l1_write_fill(access.block, core);
  } else {
    directory_.on_l1_read_fill(access.block, core);
  }

  // L2 access.
  const Cycle l2_issue = issue_time + config_.l1_latency;
  auto outcome = l2_->access(access.block, core, access.is_write, l2_issue);
  Cycle data_ready = outcome.ready_at;
  if (!outcome.hit) data_ready = dram_.read(outcome.ready_at);

  // Inclusion: lines that left the L2 recall their L1 copies; dirty data
  // drains to memory. Writebacks are stamped at the bank access time (when
  // the eviction happens), never at the demand data's return time: a
  // future-stamped writeback would ratchet the channel ahead of wall-clock
  // and falsely serialize every later demand read behind it.
  for (const auto& evicted : outcome.evicted) {
    const auto action = directory_.on_l2_evict(evicted.block);
    if (evicted.allocator != kInvalidCore &&
        evicted.allocator < config_.geometry.num_cores) {
      l1_[evicted.allocator].invalidate(evicted.block);
    }
    if (evicted.dirty || action.writeback_below) dram_.writeback(outcome.ready_at);
  }

  // L1 fill; its eviction may push dirty data back into the L2.
  const auto l1_fill = l1_[core].fill(access.block, 0, access.is_write);
  if (l1_fill.evicted) {
    const auto action =
        directory_.on_l1_evict(l1_fill.evicted->block, core, l1_fill.evicted->dirty);
    if (l1_fill.evicted->dirty || action.writeback_below) {
      if (!l2_->writeback_update(l1_fill.evicted->block)) {
        dram_.writeback(outcome.ready_at);
      }
    }
  }

  return data_ready;
}

void System::execute(std::uint64_t instructions_per_core) {
  struct QueueEntry {
    Cycle issue_at;
    CoreId core;
    bool operator>(const QueueEntry& other) const { return issue_at > other.issue_at; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  // Equal instruction slices (the paper's methodology): each core's access
  // quota follows its APKI, so per-policy total miss counts weight each
  // workload by its real memory intensity. Quotas follow the *currently
  // bound* workload (reset_core() may have replaced the construction mix).
  // Inactive slots get no quota and never enter the queue.
  const auto& suite = trace::spec2000_suite();
  std::vector<std::uint64_t> remaining(config_.geometry.num_cores, 0);
  std::uint32_t unfinished = 0;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    if (active_[core] == 0) continue;
    const double apki = suite.at(bound_workloads_[core]).l2_apki;
    remaining[core] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(instructions_per_core) *
                                      apki / 1000.0));
    ++unfinished;
    queue.push({timers_[core]->peek_issue(), core});
  }

  // Co-scheduled slices: every core keeps executing (and keeps polluting
  // the shared structures and feeding its profiler) until the *slowest*
  // core completes its quota — a fast core finishing early and going quiet
  // would both starve its own profile of samples and unrealistically
  // relieve its co-runners of interference for the tail of the run.
  // Per-core statistics snapshot at quota completion, so reported counts
  // always cover exactly `l2_accesses_per_core` accesses per core.
  while (unfinished > 0) {
    const auto entry = queue.top();
    // Epoch boundaries fire in global time order, before any access that
    // crosses them.
    if (entry.issue_at >= next_epoch_) {
      run_epoch_boundary();
      next_epoch_ += config_.epoch_cycles;
      continue;
    }
    queue.pop();

    const Cycle issue_time = timers_[entry.core]->advance_to_issue();
    const Cycle done_at = serve_access(entry.core, issue_time);
    timers_[entry.core]->record_completion(done_at);

    if (remaining[entry.core] > 0 && --remaining[entry.core] == 0) {
      snapshot_core(entry.core);
      --unfinished;
    }
    if (unfinished > 0) queue.push({timers_[entry.core]->peek_issue(), entry.core});
  }
  // Rewind unconsumed batch suffixes before handing control back: outside
  // execute, generators are always in their exact scalar state.
  flush_streams();
  for (auto& timer : timers_) timer->drain();
  audit_checkpoint("end of run");
}

void System::snapshot_core(CoreId core) {
  CoreSnapshot snapshot;
  snapshot.instructions = timers_[core]->instructions_since_mark();
  snapshot.cycles = timers_[core]->cycles_since_mark();
  snapshot.cpi = timers_[core]->cpi_since_mark();
  snapshot.l2_hits = l2_->stats().hits[core];
  snapshot.l2_misses = l2_->stats().misses[core];
  snapshot.taken = true;
  snapshots_[core] = snapshot;
}

void System::clear_all_stats() {
  l2_->clear_stats();
  dram_.clear_stats();
  noc_.clear_stats();
  directory_.clear_stats();
  for (auto& timer : timers_) timer->mark();
  snapshots_.assign(config_.geometry.num_cores, CoreSnapshot{});
  // The epoch count and per-epoch series describe the measurement window
  // only, so SystemResults::epochs() == epoch_series().num_epochs().
  epochs_ = 0;
  reset_epoch_tracking();
}

void System::switch_workload(CoreId core, std::string_view workload_name) {
  BACP_ASSERT(core < generators_.size(), "core out of range");
  flush_stream(core);  // defensive: a model switch must see scalar state
  generators_[core]->switch_model(trace::spec2000_by_name(workload_name));
}

void System::warm_up(std::uint64_t instructions_per_core) {
  execute(instructions_per_core);
  clear_all_stats();
}

void System::step_epochs(std::uint64_t epochs) {
  struct QueueEntry {
    Cycle issue_at;
    CoreId core;
    bool operator>(const QueueEntry& other) const { return issue_at > other.issue_at; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    if (active_[core] != 0) queue.push({timers_[core]->peek_issue(), core});
  }
  // No quotas and no end-of-run drain: the in-flight windows carry across
  // calls, so stepping one epoch at a time is the same trajectory as
  // stepping them all at once.
  std::uint64_t fired = 0;
  while (fired < epochs) {
    if (queue.empty() || queue.top().issue_at >= next_epoch_) {
      run_epoch_boundary();
      next_epoch_ += config_.epoch_cycles;
      ++fired;
      continue;
    }
    const auto entry = queue.top();
    queue.pop();
    const Cycle issue_time = timers_[entry.core]->advance_to_issue();
    const Cycle done_at = serve_access(entry.core, issue_time);
    timers_[entry.core]->record_completion(done_at);
    queue.push({timers_[entry.core]->peek_issue(), entry.core});
  }
  flush_streams();
}

void System::reset_core(CoreId core, std::string_view workload_name,
                        std::uint64_t stream_salt) {
  BACP_ASSERT(core < config_.geometry.num_cores, "core out of range");
  const std::size_t workload = trace::spec2000_index(workload_name);
  const auto& model = trace::spec2000_suite().at(workload);

  // Coherent L1 flush: the departing tenant's private lines leave through
  // the same directory/L2/DRAM path a capacity eviction takes, so MOESI
  // state and dirty data stay consistent. The drain is stamped at the
  // slot's local clock — it happened before the new tenant's first access.
  const Cycle drain_time = timers_[core]->time();
  for (const auto& line : l1_[core].resident_lines()) {
    const auto action = directory_.on_l1_evict(line.block, core, line.dirty);
    if (line.dirty || action.writeback_below) {
      if (!l2_->writeback_update(line.block)) dram_.writeback(drain_time);
    }
    l1_[core].invalidate(line.block);
  }

  // The newcomer's profile, reuse structure and timing replace the old
  // tenant's; the salt decorrelates its streams from every other instance
  // of the same workload in the session.
  flush_stream(core);  // defensive: drop any buffered departing-tenant accesses
  profilers_[core]->clear();
  trace::GeneratorConfig generator_config;
  generator_config.num_sets = config_.sets_per_bank;
  generator_config.max_depth = config_.geometry.total_ways();
  generator_config.core = core;
  generators_[core] = std::make_unique<trace::SyntheticTraceGenerator>(
      model, generator_config, config_.seed ^ stream_salt);

  core::CoreTimerConfig timer_config;
  timer_config.base_cpi = model.base_cpi;
  timer_config.instructions_per_l2_access = 1000.0 / model.l2_apki;
  timer_config.mlp_window = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(std::lround(model.mlp)), 1,
      config_.mshr.entries_per_core);
  timer_config.gap_jitter = config_.gap_jitter;
  timer_config.seed = (config_.seed ^ 0x5175ULL) ^ stream_salt;
  timer_config.core = core;
  timers_[core]->rebind(timer_config);

  // Join at current global time (an idle slot's clock may be far behind),
  // and start the slot's measurement and profile windows here.
  Cycle now = 0;
  for (const auto& timer : timers_) now = std::max(now, timer->time());
  timers_[core]->fast_forward(now);
  timers_[core]->mark();
  last_epoch_instructions_[core] = timers_[core]->instructions();
  decayed_instructions_[core] = 0.0;
  bound_workloads_[core] = workload;
  audit_checkpoint("reset_core");
}

void System::set_core_active(CoreId core, bool active) {
  BACP_ASSERT(core < config_.geometry.num_cores, "core out of range");
  active_[core] = active ? 1 : 0;
}

std::uint32_t System::num_active_cores() const {
  std::uint32_t count = 0;
  for (const std::uint8_t flag : active_) count += flag;
  return count;
}

void System::install_partition(const partition::Allocation& allocation,
                               const partition::BankAssignment& assignment) {
  BACP_ASSERT(config_.policy == PolicyKind::External,
              "install_partition is the PolicyKind::External driver surface");
  assignment.validate_against(config_.geometry, allocation);
  l2_->apply_assignment(assignment);
  allocation_ = allocation;
  allocation_history_.push_back(allocation);
  audit_checkpoint("install_partition");
}

void System::reset_measurement() { clear_all_stats(); }

std::vector<System::CoreSample> System::sample_cores() const {
  std::vector<CoreSample> samples(config_.geometry.num_cores);
  const auto& l2_stats = l2_->stats();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    CoreSample& sample = samples[core];
    sample.instructions = timers_[core]->instructions_since_mark();
    sample.cycles = timers_[core]->cycles_since_mark();
    sample.l2_hits = l2_stats.hits[core];
    sample.l2_misses = l2_stats.misses[core];
    sample.ways = allocation_.ways_per_core.at(core);
    sample.active = active_[core] != 0;
  }
  return samples;
}

void System::save_into(snapshot::SnapshotBuilder& builder) const {
  // Snapshots are only meaningful at statistics-clean points (right after
  // construction, warm_up() or reset_measurement()): epoch tracking, series
  // handles and core snapshots are all in their reset state there, so
  // restore can rebuild them deterministically instead of serializing
  // registry internals.
  BACP_ASSERT(epochs_ == 0, "save_state requires a statistics-clean system");
  for (const auto& core_snapshot : snapshots_) {
    BACP_ASSERT(!core_snapshot.taken, "save_state requires a statistics-clean system");
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::SystemMeta);
    writer.scalars(std::span<const std::size_t>(mix_.workload_indices));
    writer.scalars(std::span<const WayCount>(allocation_.ways_per_core));
    writer.u64(allocation_history_.size());
    for (const auto& allocation : allocation_history_) {
      writer.scalars(std::span<const WayCount>(allocation.ways_per_core));
    }
    // Doubles travel one at a time through the bit-exact f64 path (the bulk
    // scalar codec rejects types with non-unique object representations).
    writer.u64(last_epoch_instructions_.size());
    for (const double value : last_epoch_instructions_) writer.f64(value);
    writer.u64(decayed_instructions_.size());
    for (const double value : decayed_instructions_) writer.f64(value);
    writer.u64(next_epoch_);
    writer.scalars(std::span<const std::uint8_t>(active_));
    writer.scalars(std::span<const std::size_t>(bound_workloads_));
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Noc);
    noc_.save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Dram);
    dram_.save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Directory);
    directory_.save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::L2);
    l2_->save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::L1);
    for (const auto& l1 : l1_) l1.save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Generators);
    for (const auto& generator : generators_) generator->save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Profilers);
    for (const auto& profiler : profilers_) profiler->save_state(writer);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Timers);
    for (const auto& timer : timers_) timer->save_state(writer);
  }
}

snapshot::SystemSnapshot System::save_state() const {
  snapshot::SnapshotBuilder builder(config_digest(config_, mix_));
  save_into(builder);
  return builder.finish();
}

void System::restore_components(const snapshot::SnapshotView& view) {
  {
    auto reader = view.section(snapshot::SectionId::Noc);
    noc_.restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::Dram);
    dram_.restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::Directory);
    directory_.restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::L2);
    l2_->restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::L1);
    for (auto& l1 : l1_) l1.restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::Generators);
    for (auto& generator : generators_) generator->restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::Profilers);
    for (auto& profiler : profilers_) profiler->restore_state(reader);
  }
  {
    auto reader = view.section(snapshot::SectionId::Timers);
    for (auto& timer : timers_) timer->restore_state(reader);
  }
}

void System::restore_from(const snapshot::SnapshotView& view) {
  restore_components(view);
  auto reader = view.section(snapshot::SectionId::SystemMeta);
  const auto mix_indices = reader.scalars<std::size_t>();
  BACP_ASSERT(mix_indices == mix_.workload_indices, "snapshot mix mismatch");
  reader.scalars_into(std::span<WayCount>(allocation_.ways_per_core));
  allocation_history_.clear();
  const std::uint64_t history_entries = reader.u64();
  for (std::uint64_t i = 0; i < history_entries; ++i) {
    partition::Allocation allocation;
    allocation.ways_per_core = reader.scalars<WayCount>();
    allocation_history_.push_back(std::move(allocation));
  }
  BACP_ASSERT(reader.u64() == last_epoch_instructions_.size(),
              "snapshot array length mismatch");
  for (double& value : last_epoch_instructions_) value = reader.f64();
  BACP_ASSERT(reader.u64() == decayed_instructions_.size(),
              "snapshot array length mismatch");
  for (double& value : decayed_instructions_) value = reader.f64();
  next_epoch_ = reader.u64();
  reader.scalars_into(std::span<std::uint8_t>(active_));
  reader.scalars_into(std::span<std::size_t>(bound_workloads_));
  // Timer/generator *workload* parameters are not serialized — the embedder
  // must have replayed reset_core() for every slot whose binding moved off
  // the construction mix, or the restored clocks would run under the wrong
  // gap model. Generators re-resolve their model by name on restore, so the
  // check pins the timers.
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const auto& model = trace::spec2000_suite().at(bound_workloads_[core]);
    BACP_ASSERT(timers_[core]->config().base_cpi == model.base_cpi,
                "restore_from: core binding not replayed before restore");
  }
  // The saving system was statistics-clean (save_state asserts it), so the
  // derived tracking state rebuilds deterministically from component state —
  // exactly what clear_all_stats() established on the saving side.
  snapshots_.assign(config_.geometry.num_cores, CoreSnapshot{});
  epochs_ = 0;
  reset_epoch_tracking();
  audit_checkpoint("restore_state");
}

void System::restore_state(const snapshot::SystemSnapshot& snapshot) {
  const snapshot::SnapshotView view(snapshot);
  BACP_ASSERT(view.config_digest() == config_digest(config_, mix_),
              "snapshot belongs to a different (config, mix)");
  restore_from(view);
}

void System::adopt_warm_state(const snapshot::SystemSnapshot& snapshot) {
  const snapshot::SnapshotView view(snapshot);
  BACP_ASSERT(view.config_digest() == warm_state_digest(config_, mix_),
              "snapshot is not this (config, mix)'s canonical warm state");
  restore_components(view);
  {
    auto reader = view.section(snapshot::SectionId::SystemMeta);
    const auto mix_indices = reader.scalars<std::size_t>();
    BACP_ASSERT(mix_indices == mix_.workload_indices, "snapshot mix mismatch");
  }
  // The warm state is policy-neutral; install this config's plan over the
  // warm contents (stale lines in reassigned ways displace naturally, the
  // same transient a mid-run repartition produces).
  apply_policy_plan();
  allocation_history_.clear();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    last_epoch_instructions_[core] = timers_[core]->instructions();
    decayed_instructions_[core] = 0.0;
  }
  // Re-arm the epoch clock at the next boundary past the warm clock (the
  // canonical warm config suppresses boundaries with a huge interval).
  Cycle max_time = 0;
  for (const auto& timer : timers_) max_time = std::max(max_time, timer->time());
  next_epoch_ = (max_time / config_.epoch_cycles + 1) * config_.epoch_cycles;
  clear_all_stats();
  audit_checkpoint("adopt_warm_state");
}

void System::run(std::uint64_t instructions_per_core) {
  execute(instructions_per_core);
}

void System::fast_forward(std::uint64_t instructions_per_core) {
  // Functional-and-timing warming for sampled runs: the same APKI-derived
  // quotas, issue-time priority queue and CoreTimer issue/stall model as
  // execute(), so the warmed trajectory — cache contents, DRAM channel
  // horizon, core clocks, jitter RNG streams — is the one a detailed run
  // would have produced. (An earlier stand-in that advanced core clocks by
  // an un-jittered gap with an ad-hoc MLP emulation let memory-bound cores
  // out-issue their detailed throttle; the DRAM busy-until horizon then
  // raced ahead of wall-clock and dragged *every* core's clock to the
  // slowest core's pace, poisoning the first detailed interval entered
  // afterwards.) All that fast_forward skips is the per-core measurement
  // snapshots; the end-of-run drain stays, so warming an interval leaves
  // the system in exactly the state run() over the same span leaves it —
  // a sampled interval's boundary state bit-matches the corresponding
  // boundary of an every-interval detailed reference run.
  struct QueueEntry {
    Cycle issue_at;
    CoreId core;
    bool operator>(const QueueEntry& other) const { return issue_at > other.issue_at; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  const auto& suite = trace::spec2000_suite();
  std::vector<std::uint64_t> remaining(config_.geometry.num_cores, 0);
  std::uint32_t unfinished = 0;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    if (active_[core] == 0) continue;
    const double apki = suite.at(bound_workloads_[core]).l2_apki;
    remaining[core] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(instructions_per_core) *
                                      apki / 1000.0));
    ++unfinished;
    queue.push({timers_[core]->peek_issue(), core});
  }

  while (unfinished > 0) {
    const auto entry = queue.top();
    // Epoch boundaries fire in global time order here too, so the warming
    // span sees the same adaptive repartitions a detailed run would.
    if (entry.issue_at >= next_epoch_) {
      run_epoch_boundary();
      next_epoch_ += config_.epoch_cycles;
      continue;
    }
    queue.pop();

    const Cycle issue_time = timers_[entry.core]->advance_to_issue();
    const Cycle done_at = serve_access(entry.core, issue_time);
    timers_[entry.core]->record_completion(done_at);

    if (remaining[entry.core] > 0 && --remaining[entry.core] == 0) --unfinished;
    if (unfinished > 0) queue.push({timers_[entry.core]->peek_issue(), entry.core});
  }
  flush_streams();
  for (auto& timer : timers_) timer->drain();
  audit_checkpoint("fast_forward");
}

SystemResults System::results() const {
  SystemResults results;
  const auto& suite = trace::spec2000_suite();
  const auto& l2_stats = l2_->stats();
  std::vector<double> cpis;
  std::uint64_t hits_total = 0;
  std::uint64_t misses_total = 0;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    CoreResult core_result;
    if (core < snapshots_.size() && snapshots_[core].taken) {
      // Quota snapshot: exactly the core's measurement slice.
      core_result.set_instructions(snapshots_[core].instructions)
          .set_cycles(snapshots_[core].cycles)
          .set_cpi(snapshots_[core].cpi)
          .set_l2_hits(snapshots_[core].l2_hits)
          .set_l2_misses(snapshots_[core].l2_misses);
    } else {
      core_result.set_instructions(timers_[core]->instructions_since_mark())
          .set_cycles(timers_[core]->cycles_since_mark())
          .set_cpi(timers_[core]->cpi_since_mark())
          .set_l2_hits(l2_stats.hits[core])
          .set_l2_misses(l2_stats.misses[core]);
    }
    core_result.set_allocated_ways(allocation_.ways_per_core.at(core));
    core_result.set_workload(suite.at(bound_workloads_[core]).name);
    cpis.push_back(core_result.cpi());
    hits_total += core_result.l2_hits();
    misses_total += core_result.l2_misses();
    results.cores().push_back(std::move(core_result));
  }

  // Component modules publish their live counters under their own
  // namespaces; the per-quota aggregates land under "sim.".
  obs::Registry& metrics = results.metrics();
  nuca::export_stats(l2_stats, metrics);
  mem::export_stats(dram_.stats(), metrics);
  noc::export_stats(noc_.stats(), metrics);
  coherence::export_stats(directory_.stats(), metrics);

  const std::uint64_t accesses = hits_total + misses_total;
  results.set_l2_accesses(accesses);
  metrics.counter("sim.live_l2_accesses")
      .set(l2_stats.total_hits() + l2_stats.total_misses());
  results.set_l2_misses(misses_total);
  results.set_l2_miss_ratio(accesses == 0 ? 0.0
                                          : static_cast<double>(misses_total) /
                                                static_cast<double>(accesses));
  results.set_mean_cpi(common::arithmetic_mean(cpis));
  results.set_epochs(epochs_);
  results.epoch_series() = epoch_series_;
  return results;
}

}  // namespace bacp::sim
