#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bacp::sampling {

/// Deterministic k-medoids clustering (PAM: greedy BUILD, then best-swap
/// SWAP to a local optimum). Medoids are actual input points, so each
/// cluster's representative is a real simulatable interval — the property
/// k-means lacks and the reason SimPoint-style selection uses medoids here.
struct KMedoidsResult {
  std::vector<std::uint32_t> medoids;     ///< point indices, strictly ascending
  std::vector<std::uint32_t> assignment;  ///< per point: medoid slot in [0, k)
  std::vector<std::uint64_t> weights;     ///< per slot: cluster population
  double total_cost = 0.0;  ///< sum of distances to assigned medoids
};

/// Clusters `points` (equal-length feature vectors) around `k` medoids.
/// Fully deterministic: no RNG, all ties broken toward the lowest index, so
/// the same points yield the same plan on every thread count, SIMD build
/// and process. O(k * n^2) per SWAP round — sized for interval counts in
/// the tens to hundreds, not millions. Requires 1 <= k <= points.size().
KMedoidsResult kmedoids(std::span<const std::vector<double>> points, std::uint32_t k);

}  // namespace bacp::sampling
