#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sampling/interval_features.hpp"
#include "sim/system_config.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/mix.hpp"

namespace bacp::sim {
class System;
}  // namespace bacp::sim

namespace bacp::sampling {

/// Warm-state forking seam: the engine keys each medoid's boundary state
/// and asks the store for it, warming via `warm` only on a miss. The
/// harness adapts its SnapshotCache (in-memory or file-banked) behind this
/// interface; tests plug in trivial stores. The store must return the
/// value `warm` produces for the key — any deterministic memoization is
/// legal, including cross-process file banks.
class SnapshotStore {
 public:
  using SnapshotPtr = std::shared_ptr<const snapshot::SystemSnapshot>;
  using WarmFn = std::function<snapshot::SystemSnapshot()>;

  virtual ~SnapshotStore() = default;
  virtual SnapshotPtr get_or_warm(std::uint64_t key, const WarmFn& warm) = 0;
};

/// Sampled-run shape: K representative intervals out of `num_intervals`,
/// each `interval_instructions` per core long, entered from a functionally
/// warmed snapshot; `warmup_instructions` of detailed warm-up precede
/// interval 0 (the paper's cache warm-up, scaled).
struct SampledRunConfig {
  // Defaults are the operating point bench_sampling_error validates: p95
  // relative miss-ratio error well under 3% at a >20x detailed-simulation
  // reduction. The warm-up matters: it moves the steep cold-cache transient
  // out of the measured population, which K medoids of a convex declining
  // curve would otherwise systematically under-represent.
  std::uint32_t k = 3;
  std::uint32_t num_intervals = 96;
  std::uint64_t interval_instructions = 50'000;
  std::uint64_t warmup_instructions = 500'000;
};

/// One mix's interval-selection plan: which intervals represent the run and
/// with what population weights. Shapes match audit::SamplingPlanInput
/// field-for-field; plan_mix() asserts its own audit before returning.
struct SamplingPlan {
  std::uint32_t num_intervals = 0;
  std::uint32_t k = 0;  ///< effective K (min(config.k, num_intervals))
  std::vector<std::uint32_t> medoids;
  std::vector<std::uint32_t> assignment;
  std::vector<std::uint64_t> weights;
};

/// Population-weighted extrapolation of the full run from the K detailed
/// intervals, with large-sample confidence half-widths (z = 1.96) from
/// common::weighted_mean_ci. `miss_ratio` is the ratio-of-sums estimator
/// (weighted misses over weighted accesses); its CI is computed over the
/// per-interval miss ratios, which is conservative for the ratio estimator.
/// No wall-clock fields — timings go through obs::global_phase_timers()
/// ("sampling.warm", "sampling.detail"), keeping this struct artifact-safe.
struct SampledEstimate {
  double miss_ratio = 0.0;
  double miss_ratio_ci_half = 0.0;
  double cpi = 0.0;
  double cpi_ci_half = 0.0;
  std::uint32_t detailed_intervals = 0;
  std::uint32_t total_intervals = 0;
};

/// Canonical detailed-simulation config for sampled sweeps and their
/// validation benches: the Table I baseline over `geometry`, seeded with
/// `seed`, with the epoch interval scaled to twice the interval length so
/// the Bank-aware repartitioning keeps adapting at interval granularity
/// (a full-length epoch would freeze the plan across every short interval).
sim::SystemConfig sampled_system_config(const partition::CmpGeometry& geometry,
                                        std::uint64_t seed,
                                        std::uint64_t interval_instructions);

/// Builds the mix's plan: per-interval feature vectors of every bound
/// (workload, core slot) pair are concatenated into one per-interval mix
/// feature, clustered with kmedoids(). Deterministic for a fixed
/// (config, mix, run). `bank` must have been built from the same config
/// and interval shape; pass nullptr to profile without memoization.
SamplingPlan plan_mix(const sim::SystemConfig& config, const trace::WorkloadMix& mix,
                      const SampledRunConfig& run, IntervalProfileBank* bank);

/// The tentpole engine: plans the mix, then simulates only the medoid
/// intervals in detail — each entered by restoring a snapshot of the
/// interval boundary, produced on first need by detailed warm-up plus
/// System::fast_forward functional warming over the skipped intervals and
/// keyed by the fold chain (config digest, run shape, medoid prefix), so a
/// boundary state is warmed at most once per store no matter how many
/// trials, threads or processes share it. Returns the population-weighted
/// extrapolation. With `snapshots == nullptr` the engine advances one live
/// system and snapshots only at medoid boundaries (no reuse).
SampledEstimate run_sampled_mix(const sim::SystemConfig& config,
                                const trace::WorkloadMix& mix,
                                const SampledRunConfig& run,
                                IntervalProfileBank* profiles,
                                SnapshotStore* snapshots);

/// Pooled-System variant: with `reuse != nullptr` the engine rewinds the
/// caller's System via System::reset_in_place(mix) instead of constructing
/// one — the dominant setup cost of short sampled trials (generator recency
/// rings, residency index reserves) is paid once per pooled System instead
/// of once per trial. `reuse` must have been built under a config whose
/// mix-independent sim::config_digest() matches `config`'s (asserted);
/// harness::SystemPool keys its Systems exactly this way. Results are
/// byte-identical to the fresh-System path — reset_in_place() restores
/// cold-construction state exactly. `reuse == nullptr` behaves like the
/// five-argument overload.
SampledEstimate run_sampled_mix(const sim::SystemConfig& config,
                                const trace::WorkloadMix& mix,
                                const SampledRunConfig& run,
                                IntervalProfileBank* profiles,
                                SnapshotStore* snapshots, sim::System* reuse);

}  // namespace bacp::sampling
