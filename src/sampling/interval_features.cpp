#include "sampling/interval_features.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"
#include "msa/stack_profiler.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp::sampling {

namespace {

/// Way stations sampled along the per-interval miss-ratio curve; clamped to
/// the profiler's stack depth, so with the default 72-way stack the last two
/// stations straddle the maximum assignable capacity.
constexpr std::array<WayCount, kCurveStations> kWayStations = {1, 2, 4, 8,
                                                               16, 32, 48, 72};

/// Feature vector from one interval's histogram delta (bins 0..K-1 = hits
/// by stack position, bin K = misses). Integer counts in, doubles out; an
/// interval whose sampled sets saw no accesses yields the zero vector,
/// which clusters all such quiet intervals together — exactly right.
std::vector<double> features_from_delta(std::span<const std::uint64_t> delta) {
  const std::size_t depth = delta.size() - 1;
  std::vector<double> features(kFeatureDim, 0.0);
  std::uint64_t total = 0;
  for (const std::uint64_t count : delta) total += count;
  if (total == 0) return features;
  const double scale = 1.0 / static_cast<double>(total);

  // Miss-ratio stations: 1 - hits-at-or-above-depth-w, from the hit-bin
  // prefix sums (the MSA inclusion projection evaluated at fixed ways).
  std::size_t feature = 0;
  std::uint64_t prefix = 0;
  std::size_t bin = 0;
  for (const WayCount station : kWayStations) {
    const std::size_t limit = std::min<std::size_t>(station, depth);
    while (bin < limit) prefix += delta[bin++];
    features[feature++] = 1.0 - static_cast<double>(prefix) * scale;
  }

  // Coarse reuse-distance bands: the K hit bins folded into kReuseBands
  // contiguous groups, as access-mass fractions.
  for (std::size_t band = 0; band < kReuseBands; ++band) {
    const std::size_t lo = band * depth / kReuseBands;
    const std::size_t hi = (band + 1) * depth / kReuseBands;
    std::uint64_t mass = 0;
    for (std::size_t i = lo; i < hi; ++i) mass += delta[i];
    features[feature++] = static_cast<double>(mass) * scale;
  }

  // Phase signature: cold-miss fraction and mean normalized hit depth.
  features[feature++] = static_cast<double>(delta[depth]) * scale;
  std::uint64_t hits = 0;
  std::uint64_t depth_weighted = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    hits += delta[i];
    depth_weighted += delta[i] * (i + 1);
  }
  features[feature++] = hits == 0 ? 0.0
                                  : static_cast<double>(depth_weighted) /
                                        (static_cast<double>(hits) *
                                         static_cast<double>(depth));
  return features;
}

}  // namespace

// GCC 12 with -fsanitize=thread -O2 miscounts the offset of the inlined
// vector deallocations below and raises -Wfree-nonheap-object on perfectly
// heap-owned storage (same class of false positive the tsan preset already
// silences with -Wno-restrict). Scoped suppression, not a preset-wide one.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

WorkloadIntervalProfile profile_workload_intervals(
    const sim::SystemConfig& config, std::size_t workload, CoreId core,
    const IntervalProfileConfig& intervals) {
  BACP_ASSERT(intervals.num_intervals > 0, "profiling requires at least one interval");
  BACP_ASSERT(intervals.interval_instructions > 0,
              "profiling requires a non-empty interval");
  const auto& model = trace::spec2000_suite().at(workload);

  // The exact stream a System would bind to this slot: same geometry knobs,
  // same seed, same core stamp (the generator's streams are core-dependent
  // and mix-independent — see System's constructor).
  trace::GeneratorConfig generator_config;
  generator_config.num_sets = config.sets_per_bank;
  generator_config.max_depth = config.geometry.total_ways();
  generator_config.core = core;
  trace::SyntheticTraceGenerator generator(model, generator_config, config.seed);
  msa::StackProfiler profiler(config.profiler);

  // Equal-instruction intervals -> APKI-proportional access counts, the
  // same quota rule execute() applies.
  const std::uint64_t accesses_per_interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(intervals.interval_instructions) * model.l2_apki /
             1000.0));

  WorkloadIntervalProfile profile;
  profile.features.reserve(intervals.num_intervals);
  profile.sampled_accesses.reserve(intervals.num_intervals);
  const std::size_t bins = profiler.histogram().num_bins();
  std::vector<std::uint64_t> previous(bins, 0);
  std::vector<std::uint64_t> delta(bins, 0);
  std::uint64_t previous_sampled = 0;
  for (std::uint32_t interval = 0; interval < intervals.num_intervals; ++interval) {
    for (std::uint64_t i = 0; i < accesses_per_interval; ++i) {
      profiler.observe(generator.next().block);
    }
    // Cumulative histogram minus the last boundary's counters — no decay()
    // is ever applied here, so the delta is exactly this interval's mass.
    for (std::size_t bin = 0; bin < bins; ++bin) {
      const std::uint64_t now = profiler.histogram().bin(bin);
      delta[bin] = now - previous[bin];
      previous[bin] = now;
    }
    profile.features.push_back(features_from_delta(delta));
    profile.sampled_accesses.push_back(profiler.sampled_accesses() - previous_sampled);
    previous_sampled = profiler.sampled_accesses();
  }
  return profile;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

IntervalProfileBank::ProfilePtr IntervalProfileBank::get(std::size_t workload,
                                                         CoreId core) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(workload) << 16) | static_cast<std::uint64_t>(core);
  std::shared_future<ProfilePtr> future;
  std::shared_ptr<std::promise<ProfilePtr>> owned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;
    } else {
      owned = std::make_shared<std::promise<ProfilePtr>>();
      future = owned->get_future().share();
      entries_.emplace(key, future);
    }
  }
  if (owned) {
    // Profile outside the lock: other (workload, core) pairs proceed
    // concurrently, and waiters on this pair block on the future.
    try {
      owned->set_value(std::make_shared<const WorkloadIntervalProfile>(
          profile_workload_intervals(config_, workload, core, intervals_)));
    } catch (...) {
      owned->set_exception(std::current_exception());
    }
  }
  return future.get();
}

}  // namespace bacp::sampling
