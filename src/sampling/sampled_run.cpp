#include "sampling/sampled_run.hpp"

#include <algorithm>
#include <optional>

#include "audit/sampling_audit.hpp"
#include "common/assert.hpp"
#include "common/stats.hpp"
#include "obs/phase_timer.hpp"
#include "sampling/kmedoids.hpp"
#include "sim/system.hpp"

namespace bacp::sampling {

namespace {

/// FNV-1a fold of one 64-bit scalar, the repo's digest hash family.
std::uint64_t fold(std::uint64_t hash, std::uint64_t value) {
  for (unsigned shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= 0x00000100000001B3ull;
  }
  return hash;
}

}  // namespace

sim::SystemConfig sampled_system_config(const partition::CmpGeometry& geometry,
                                        std::uint64_t seed,
                                        std::uint64_t interval_instructions) {
  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.geometry = geometry;
  config.seed = seed;
  // Cycles-per-interval ~ instructions at CPI ~ 1; two intervals per epoch
  // keeps boundary work amortized while still adapting within a run.
  config.epoch_cycles = std::max<Cycle>(1, 2 * interval_instructions);
  config.finalize();
  return config;
}

SamplingPlan plan_mix(const sim::SystemConfig& config, const trace::WorkloadMix& mix,
                      const SampledRunConfig& run, IntervalProfileBank* bank) {
  BACP_ASSERT(run.num_intervals > 0, "sampled run requires at least one interval");
  BACP_ASSERT(run.k > 0, "sampled run requires k > 0");
  IntervalProfileConfig intervals;
  intervals.num_intervals = run.num_intervals;
  intervals.interval_instructions = run.interval_instructions;

  // One per-interval mix feature = the concatenation of every core slot's
  // per-interval features: a mix changes phase when any of its co-runners
  // does, and the concatenation keeps per-slot structure separable.
  std::vector<std::vector<double>> points(
      run.num_intervals, std::vector<double>(mix.num_cores() * kFeatureDim, 0.0));
  for (CoreId core = 0; core < mix.num_cores(); ++core) {
    const std::size_t workload = mix.workload_indices[core];
    IntervalProfileBank::ProfilePtr held;
    const WorkloadIntervalProfile* profile = nullptr;
    if (bank != nullptr) {
      BACP_ASSERT(bank->intervals().num_intervals == intervals.num_intervals &&
                      bank->intervals().interval_instructions ==
                          intervals.interval_instructions,
                  "profile bank built for a different interval shape");
      held = bank->get(workload, core);
      profile = held.get();
    }
    WorkloadIntervalProfile local;
    if (profile == nullptr) {
      local = profile_workload_intervals(config, workload, core, intervals);
      profile = &local;
    }
    for (std::uint32_t interval = 0; interval < run.num_intervals; ++interval) {
      std::copy(profile->features[interval].begin(), profile->features[interval].end(),
                points[interval].begin() + core * kFeatureDim);
    }
  }

  const auto clusters = kmedoids(
      points, std::min<std::uint32_t>(run.k, run.num_intervals));

  SamplingPlan plan;
  plan.num_intervals = run.num_intervals;
  plan.k = static_cast<std::uint32_t>(clusters.medoids.size());
  plan.medoids = clusters.medoids;
  plan.assignment = clusters.assignment;
  plan.weights = clusters.weights;

  // Plan legality is a hard precondition of the estimator (a weight
  // mismatch silently biases every extrapolated figure), so refuse here.
  audit::SamplingPlanInput claim;
  claim.num_intervals = plan.num_intervals;
  claim.k = plan.k;
  claim.medoids = plan.medoids;
  claim.assignment = plan.assignment;
  claim.weights = plan.weights;
  const audit::AuditReport report = audit::audit_sampling_plan(claim);
  BACP_ASSERT(report.ok(), "sampling plan failed its legality audit");
  return plan;
}

SampledEstimate run_sampled_mix(const sim::SystemConfig& config,
                                const trace::WorkloadMix& mix,
                                const SampledRunConfig& run,
                                IntervalProfileBank* profiles,
                                SnapshotStore* snapshots) {
  return run_sampled_mix(config, mix, run, profiles, snapshots, nullptr);
}

SampledEstimate run_sampled_mix(const sim::SystemConfig& config,
                                const trace::WorkloadMix& mix,
                                const SampledRunConfig& run,
                                IntervalProfileBank* profiles,
                                SnapshotStore* snapshots, sim::System* reuse) {
  const SamplingPlan plan = plan_mix(config, mix, run, profiles);

  // Pooled path: rewind the caller's System instead of constructing one.
  // System is deliberately not movable (flat arrays hand out interior
  // pointers), so the fresh-System path lives in an optional built in place.
  std::optional<sim::System> local;
  if (reuse != nullptr) {
    BACP_ASSERT(sim::config_digest(reuse->config()) == sim::config_digest(config),
                "pooled System was built under a different config shape");
    reuse->reset_in_place(mix);
  } else {
    local.emplace(config, mix);
  }
  sim::System& system = reuse != nullptr ? *reuse : *local;
  // Boundary-state keys are a fold chain: the (config, mix) digest, the run
  // shape, then each medoid index in simulation order. The chain makes keys
  // *trajectory*-dependent — the state at boundary m depends on which
  // earlier intervals ran detailed — so two plans share a snapshot iff they
  // share the entire medoid prefix leading to it.
  std::uint64_t chain = sim::config_digest(config, mix);
  chain = fold(chain, run.warmup_instructions);
  chain = fold(chain, run.interval_instructions);
  chain = fold(chain, run.num_intervals);

  bool warmed = false;
  std::uint32_t pos = 0;  // interval boundary the live system stands at
  std::vector<double> ratios(plan.k, 0.0);
  std::vector<double> cpis(plan.k, 0.0);
  std::vector<double> weights(plan.k, 0.0);
  double weighted_misses = 0.0;
  double weighted_accesses = 0.0;

  for (std::uint32_t slot = 0; slot < plan.k; ++slot) {
    const std::uint32_t medoid = plan.medoids[slot];
    chain = fold(chain, medoid);

    const auto warm = [&]() -> snapshot::SystemSnapshot {
      const auto timer = obs::global_phase_timers().scope("sampling.warm");
      if (!warmed) {
        system.warm_up(run.warmup_instructions);
        warmed = true;
      }
      for (; pos < medoid; ++pos) system.fast_forward(run.interval_instructions);
      // fast_forward accumulates statistics and fires epoch boundaries;
      // re-arm the measurement window so the snapshot is statistics-clean
      // (save_state's precondition) and the interval measures only itself.
      system.reset_measurement();
      return system.save_state();
    };
    SnapshotStore::SnapshotPtr boundary;
    if (snapshots != nullptr) {
      boundary = snapshots->get_or_warm(chain, warm);
    } else {
      boundary = std::make_shared<const snapshot::SystemSnapshot>(warm());
    }
    // Restore unconditionally: on a store hit this forks the banked state
    // (possibly warmed by another thread or process); on a miss it re-applies
    // the bytes the live system just produced — either way the detailed
    // interval below starts from the identical boundary state.
    {
      const auto timer = obs::global_phase_timers().scope("sampling.restore");
      system.restore_state(*boundary);
    }
    warmed = true;
    pos = medoid;
    system.reset_measurement();

    {
      const auto timer = obs::global_phase_timers().scope("sampling.detail");
      system.run(run.interval_instructions);
    }
    pos = medoid + 1;

    const sim::SystemResults results = system.results();
    const double accesses = static_cast<double>(results.l2_accesses());
    const double misses = static_cast<double>(results.l2_misses());
    const double weight = static_cast<double>(plan.weights[slot]);
    ratios[slot] = accesses > 0.0 ? misses / accesses : 0.0;
    cpis[slot] = results.mean_cpi();
    weights[slot] = weight;
    weighted_misses += weight * misses;
    weighted_accesses += weight * accesses;
  }

  SampledEstimate estimate;
  estimate.miss_ratio =
      weighted_accesses > 0.0 ? weighted_misses / weighted_accesses : 0.0;
  const common::WeightedMeanCi ratio_ci = common::weighted_mean_ci(ratios, weights);
  estimate.miss_ratio_ci_half = ratio_ci.ci_half;
  const common::WeightedMeanCi cpi_ci = common::weighted_mean_ci(cpis, weights);
  estimate.cpi = cpi_ci.mean;
  estimate.cpi_ci_half = cpi_ci.ci_half;
  estimate.detailed_intervals = plan.k;
  estimate.total_intervals = plan.num_intervals;
  return estimate;
}

}  // namespace bacp::sampling
