#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "sim/system_config.hpp"

namespace bacp::sampling {

/// How a workload's trace is cut into profiling intervals. The interval
/// length is in committed instructions per core (the unit System::run and
/// warm_up use); each interval's L2-access count follows the workload's
/// APKI, exactly as the simulator's equal-instruction slices do.
struct IntervalProfileConfig {
  std::uint32_t num_intervals = 32;
  std::uint64_t interval_instructions = 50'000;
};

/// Dimensionality of one interval's feature vector: miss-ratio stations
/// along the MSA curve, coarse reuse-distance bands, and two phase-signature
/// scalars (cold-miss fraction, mean normalized hit depth).
inline constexpr std::size_t kCurveStations = 8;
inline constexpr std::size_t kReuseBands = 8;
inline constexpr std::size_t kFeatureDim = kCurveStations + kReuseBands + 2;

/// Per-interval feature vectors for one (workload, core slot) pair, plus
/// the sampled-access mass each interval contributed (diagnostics; the
/// features themselves are already normalized per interval).
struct WorkloadIntervalProfile {
  std::vector<std::vector<double>> features;  ///< num_intervals x kFeatureDim
  std::vector<std::uint64_t> sampled_accesses;  ///< per interval
};

/// Profiles workload `workload` bound to core slot `core` under `config`'s
/// trace geometry and seed: replays the exact synthetic stream a System
/// built from (config, any mix binding this workload to this core) would
/// generate, through a standalone StackProfiler, and cuts the cumulative
/// stack-distance histogram into per-interval deltas. All-integer until the
/// final normalization, so the vectors are bit-identical across threads,
/// SIMD dispatch and processes. The stream depends on (workload, core,
/// config.seed) only — never on the co-runners — which is what makes
/// profiles cacheable across Monte-Carlo mixes.
WorkloadIntervalProfile profile_workload_intervals(const sim::SystemConfig& config,
                                                   std::size_t workload, CoreId core,
                                                   const IntervalProfileConfig& intervals);

/// Concurrent memoization of profile_workload_intervals over (workload,
/// core) for one fixed (config, intervals): the first caller of a pair
/// profiles outside the lock while racing callers block on a shared future
/// (the SnapshotCache discipline). One bank serves a whole Monte-Carlo
/// sweep — a suite of W workloads over C core slots needs at most W x C
/// profiling passes no matter how many trials run.
class IntervalProfileBank {
 public:
  using ProfilePtr = std::shared_ptr<const WorkloadIntervalProfile>;

  IntervalProfileBank(const sim::SystemConfig& config,
                      const IntervalProfileConfig& intervals)
      : config_(config), intervals_(intervals) {}

  ProfilePtr get(std::size_t workload, CoreId core);

  const IntervalProfileConfig& intervals() const { return intervals_; }

 private:
  sim::SystemConfig config_;
  IntervalProfileConfig intervals_;
  std::mutex mutex_;
  std::map<std::uint64_t, std::shared_future<ProfilePtr>> entries_;
};

}  // namespace bacp::sampling
