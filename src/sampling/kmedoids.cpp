#include "sampling/kmedoids.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace bacp::sampling {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
/// A SWAP must beat the incumbent by more than fp noise to be applied,
/// or two symmetric configurations could flip-flop forever.
constexpr double kImprovementEpsilon = 1e-12;

/// Squared Euclidean distance: monotone in the true metric, one multiply
/// per dimension, and summed in fixed index order (determinism).
double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMedoidsResult kmedoids(std::span<const std::vector<double>> points, std::uint32_t k) {
  const std::size_t n = points.size();
  BACP_ASSERT(n > 0, "kmedoids requires at least one point");
  BACP_ASSERT(k >= 1 && k <= n, "kmedoids requires 1 <= k <= point count");
  for (const auto& point : points) {
    BACP_ASSERT(point.size() == points.front().size(),
                "kmedoids points must share one dimension");
  }

  // Dense distance matrix: every phase below reads it O(n) times per
  // candidate, and n is an interval count (tens), not a trace length.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = squared_distance(points[i], points[j]);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  const auto d = [&](std::size_t i, std::size_t j) { return dist[i * n + j]; };

  // BUILD: seed with the 1-medoid optimum, then greedily add the point
  // with the largest cost reduction. Strict comparisons + ascending scans
  // break every tie toward the lowest index.
  std::vector<std::uint32_t> medoids;
  std::vector<std::uint8_t> is_medoid(n, 0);
  std::vector<double> nearest(n, kInfinity);
  {
    std::size_t best = 0;
    double best_cost = kInfinity;
    for (std::size_t candidate = 0; candidate < n; ++candidate) {
      double cost = 0.0;
      for (std::size_t j = 0; j < n; ++j) cost += d(candidate, j);
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;
      }
    }
    medoids.push_back(static_cast<std::uint32_t>(best));
    is_medoid[best] = 1;
    for (std::size_t j = 0; j < n; ++j) nearest[j] = d(best, j);
  }
  while (medoids.size() < k) {
    std::size_t best = n;
    double best_gain = -kInfinity;
    for (std::size_t candidate = 0; candidate < n; ++candidate) {
      if (is_medoid[candidate] != 0) continue;
      double gain = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double closer = nearest[j] - d(candidate, j);
        if (closer > 0.0) gain += closer;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = candidate;
      }
    }
    medoids.push_back(static_cast<std::uint32_t>(best));
    is_medoid[best] = 1;
    for (std::size_t j = 0; j < n; ++j) nearest[j] = std::min(nearest[j], d(best, j));
  }

  // SWAP: apply the single best (medoid, non-medoid) exchange until no
  // exchange improves the cost beyond fp noise. Per-point nearest/second
  // distances make each candidate evaluation O(n).
  std::vector<std::uint32_t> nearest_slot(n, 0);
  std::vector<double> second(n, kInfinity);
  const auto refresh = [&] {
    for (std::size_t j = 0; j < n; ++j) {
      nearest[j] = kInfinity;
      second[j] = kInfinity;
      for (std::size_t slot = 0; slot < medoids.size(); ++slot) {
        const double dj = d(medoids[slot], j);
        if (dj < nearest[j]) {
          second[j] = nearest[j];
          nearest[j] = dj;
          nearest_slot[j] = static_cast<std::uint32_t>(slot);
        } else if (dj < second[j]) {
          second[j] = dj;
        }
      }
    }
  };
  bool improved = true;
  while (improved) {
    improved = false;
    refresh();
    std::size_t best_slot = 0;
    std::size_t best_candidate = n;
    double best_delta = -kImprovementEpsilon;
    for (std::size_t slot = 0; slot < medoids.size(); ++slot) {
      for (std::size_t candidate = 0; candidate < n; ++candidate) {
        if (is_medoid[candidate] != 0) continue;
        double delta = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          const double dj = d(candidate, j);
          if (nearest_slot[j] == slot) {
            // Losing its medoid: falls to the swapped-in candidate or its
            // second-nearest survivor, whichever is closer.
            delta += std::min(dj, second[j]) - nearest[j];
          } else if (dj < nearest[j]) {
            delta += dj - nearest[j];
          }
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_slot = slot;
          best_candidate = candidate;
        }
      }
    }
    if (best_candidate < n) {
      is_medoid[medoids[best_slot]] = 0;
      medoids[best_slot] = static_cast<std::uint32_t>(best_candidate);
      is_medoid[best_candidate] = 1;
      improved = true;
    }
  }

  // Canonical form: medoids ascending (slot order == simulation order),
  // each point assigned to its nearest medoid with ties to the lowest
  // slot — except a medoid always represents itself, even when duplicate
  // feature vectors put two medoids at distance zero from each other.
  std::sort(medoids.begin(), medoids.end());
  KMedoidsResult result;
  result.medoids = std::move(medoids);
  result.assignment.resize(n);
  result.weights.assign(result.medoids.size(), 0);
  std::vector<std::uint32_t> own_slot(n, static_cast<std::uint32_t>(n));
  for (std::size_t s = 0; s < result.medoids.size(); ++s) {
    own_slot[result.medoids[s]] = static_cast<std::uint32_t>(s);
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t slot = own_slot[j];
    double best = 0.0;
    if (slot == static_cast<std::uint32_t>(n)) {
      slot = 0;
      best = kInfinity;
      for (std::size_t s = 0; s < result.medoids.size(); ++s) {
        const double dj = d(result.medoids[s], j);
        if (dj < best) {
          best = dj;
          slot = static_cast<std::uint32_t>(s);
        }
      }
    }
    result.assignment[j] = slot;
    ++result.weights[slot];
    result.total_cost += best;
  }
  return result;
}

}  // namespace bacp::sampling
