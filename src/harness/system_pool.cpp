#include "harness/system_pool.hpp"

#include <utility>

#include "common/assert.hpp"
#include "sim/system_config.hpp"

namespace bacp::harness {

void SystemPool::Lease::release() {
  if (pool_ != nullptr && system_ != nullptr) {
    pool_->release(key_, std::move(system_));
  }
  pool_ = nullptr;
  system_.reset();
}

SystemPool::Lease SystemPool::acquire(const sim::SystemConfig& config,
                                      const trace::WorkloadMix& mix) {
  const std::uint64_t key = sim::config_digest(config);
  {
    const common::MutexLock lock(mutex_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<sim::System> system = std::move(it->second.back());
      it->second.pop_back();
      ++hits_;
      ++outstanding_;
      return Lease(this, key, std::move(system), /*pooled_hit=*/true);
    }
    ++misses_;
    ++outstanding_;
  }
  // Construct outside the lock: first-time workers build in parallel, and
  // the multi-megabyte flat-array allocations never serialize the pool.
  return Lease(this, key, std::make_unique<sim::System>(config, mix),
               /*pooled_hit=*/false);
}

void SystemPool::release(std::uint64_t key, std::unique_ptr<sim::System> system) {
  const common::MutexLock lock(mutex_);
  BACP_ASSERT(outstanding_ > 0, "pool release without a matching acquire");
  --outstanding_;
  idle_[key].push_back(std::move(system));
}

std::uint64_t SystemPool::hits() const {
  const common::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t SystemPool::misses() const {
  const common::MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t SystemPool::idle() const {
  const common::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, systems] : idle_) total += systems.size();
  return total;
}

std::uint64_t SystemPool::outstanding() const {
  const common::MutexLock lock(mutex_);
  return outstanding_;
}

audit::PoolBookkeepingInput SystemPool::bookkeeping() const {
  const common::MutexLock lock(mutex_);
  audit::PoolBookkeepingInput input;
  input.hits = hits_;
  input.misses = misses_;
  input.outstanding = outstanding_;
  for (const auto& [key, systems] : idle_) input.idle += systems.size();
  return input;
}

}  // namespace bacp::harness
