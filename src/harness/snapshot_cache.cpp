#include "harness/snapshot_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <span>
#include <utility>

#include "audit/snapshot_audit.hpp"
#include "common/fsio.hpp"
#include "common/thread_pool.hpp"
#include "harness/config_cli.hpp"
#include "harness/system_pool.hpp"
#include "obs/phase_timer.hpp"
#include "sim/system_config.hpp"

namespace bacp::harness {

SnapshotCache::SnapshotPtr SnapshotCache::get_or_warm(std::uint64_t key,
                                                      const WarmFn& warm) {
  std::shared_future<SnapshotPtr> future;
  std::shared_ptr<std::promise<SnapshotPtr>> owned;
  std::string bank;
  bool mmap_reads = true;
  {
    const common::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      owned = std::make_shared<std::promise<SnapshotPtr>>();
      future = owned->get_future().share();
      entries_.emplace(key, future);
      bank = bank_directory_;  // copied under the lock for the unlocked warm
      mmap_reads = mmap_reads_;
    }
  }
  if (owned) {
    // Warm outside the lock: other keys proceed concurrently, and waiters
    // on this key block on the future, not the mutex.
    try {
      if (SnapshotPtr banked = try_load(bank, key, mmap_reads)) {
        {
          const common::MutexLock lock(mutex_);
          ++file_hits_;
        }
        owned->set_value(std::move(banked));
      } else {
        auto snapshot = std::make_shared<const snapshot::SystemSnapshot>(warm());
        if (!bank.empty()) store(bank, key, *snapshot);
        owned->set_value(std::move(snapshot));
      }
    } catch (...) {
      owned->set_exception(std::current_exception());
    }
  }
  return future.get();
}

void SnapshotCache::set_file_bank(std::string directory) {
  const common::MutexLock lock(mutex_);
  bank_directory_ = std::move(directory);
}

void SnapshotCache::set_mmap_reads(bool enabled) {
  const common::MutexLock lock(mutex_);
  mmap_reads_ = enabled;
}

std::string SnapshotCache::bank_path(const std::string& directory,
                                     std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.snap",
                static_cast<unsigned long long>(key));
  return directory + "/" + name;
}

SnapshotCache::SnapshotPtr SnapshotCache::try_load(const std::string& directory,
                                                   std::uint64_t key,
                                                   bool mmap_reads) {
  if (directory.empty()) return nullptr;
  const auto timer = obs::global_phase_timers().scope("bank.load");
  const std::string path = bank_path(directory, key);
  auto snapshot = std::make_shared<snapshot::SystemSnapshot>();
  if (mmap_reads) {
    // Zero-copy: adopt the mapped file as the snapshot's backing. Restores
    // then read sections straight out of the page cache; the multi-megabyte
    // buffer is never duplicated on the heap. The map pins the published
    // inode, so a concurrent re-publish (atomic rename) cannot tear it.
    auto mapping = std::make_shared<common::MappedFile>(common::MappedFile::open(path));
    if (!mapping->valid()) return nullptr;
    snapshot->mapped = mapping->bytes();
    snapshot->backing = std::move(mapping);
  } else {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.is_open()) return nullptr;
    const std::streamsize size = in.tellg();
    if (size <= 0) return nullptr;
    snapshot->bytes.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    if (!in.read(reinterpret_cast<char*>(snapshot->bytes.data()), size)) return nullptr;
  }
  // The bank is advisory: a snapshot that fails the structural audit
  // (truncation, bit rot, a stale format) is simply ignored and the warm-up
  // runs — wrong bytes must never leak into a simulation. audit_snapshot
  // reads through data(), so on the mmap path every section checksum is
  // computed from the mapped region itself and a truncated map fails
  // closed here, before any restore can touch it.
  if (!audit::audit_snapshot(*snapshot).ok()) return nullptr;
  return snapshot;
}

void SnapshotCache::store(const std::string& directory, std::uint64_t key,
                          const snapshot::SystemSnapshot& snapshot) {
  const std::string path = bank_path(directory, key);
  // Stage in TMPDIR when set (typically the fastest scratch filesystem),
  // with a process-unique name so concurrent shard processes sharing one
  // bank never collide on the staging file. TMPDIR may be a different
  // filesystem than the bank — publish_file_atomic absorbs the EXDEV
  // rename by falling back to copy+fsync+rename inside the bank directory.
  char name[48];
  std::snprintf(name, sizeof(name), "/%016llx.stage.%lld",
                static_cast<unsigned long long>(key),
                static_cast<long long>(::getpid()));
  const std::string temp = common::staging_directory(directory) + name;
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return;  // unwritable staging: cache miss, not an error
    const std::span<const std::uint8_t> bytes = snapshot.data();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::remove(temp.c_str());
      return;
    }
  }
  // Atomic publish: concurrent readers see the old bank or the whole file.
  // Failure (unwritable bank, full disk) degrades to an in-memory-only
  // entry; publish_file_atomic has already removed the staging file.
  common::publish_file_atomic(temp, path);
}

std::uint64_t SnapshotCache::hits() const {
  const common::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t SnapshotCache::misses() const {
  const common::MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t SnapshotCache::file_hits() const {
  const common::MutexLock lock(mutex_);
  return file_hits_;
}

std::vector<std::pair<std::string, std::string>> VariantSweepOptions::cli_flags() {
  return {
      value_flag(kThreadsKnob),
      value_flag(kBatchKnob),
      value_flag(kSnapshotBankKnob),
      value_flag(kPoolKnob),
      value_flag(kMmapKnob),
      bool_flag("no-snapshot-reuse", "warm every run cold instead of forking snapshots"),
      bool_flag("shared-warmup", "one policy-neutral warm-up per mix (changes results)"),
  };
}

VariantSweepOptions VariantSweepOptions::from_args(const common::ArgParser& parser) {
  VariantSweepOptions options;
  options.num_threads = read_threads(parser, options.num_threads);
  options.batch_size =
      static_cast<std::uint32_t>(read_u64(parser, kBatchKnob, options.batch_size));
  options.snapshot_reuse = !parser.get_bool_or_fail("no-snapshot-reuse", false);
  options.shared_warmup = parser.get_bool_or_fail("shared-warmup", false);
  options.snapshot_bank = read_string(parser, kSnapshotBankKnob, options.snapshot_bank);
  options.pool = read_toggle(parser, kPoolKnob, options.pool);
  options.mmap = read_toggle(parser, kMmapKnob, options.mmap);
  return options;
}

std::uint64_t warmup_key(std::uint64_t state_digest, std::uint64_t warmup_instructions) {
  // Fold the warm-up length into the digest with one FNV-1a round per byte,
  // matching the hash family used for the digest itself.
  std::uint64_t hash = state_digest;
  for (unsigned shift = 0; shift < 64; shift += 8) {
    hash ^= (warmup_instructions >> shift) & 0xFF;
    hash *= 0x00000100000001B3ull;
  }
  return hash;
}

void warm_system(sim::System& system, const trace::WorkloadMix& mix,
                 std::uint64_t warmup_instructions, SnapshotCache* cache,
                 bool shared_warmup) {
  if (cache == nullptr) {
    const auto timer = obs::global_phase_timers().scope("warmup");
    system.warm_up(warmup_instructions);
    return;
  }
  if (shared_warmup) {
    const std::uint64_t key =
        warmup_key(sim::warm_state_digest(system.config(), mix), warmup_instructions);
    const auto snapshot = cache->get_or_warm(key, [&] {
      const auto timer = obs::global_phase_timers().scope("warmup");
      sim::System canonical(sim::canonical_warm_config(system.config()), mix);
      canonical.warm_up(warmup_instructions);
      return canonical.save_state();
    });
    system.adopt_warm_state(*snapshot);
    return;
  }
  const std::uint64_t key =
      warmup_key(sim::config_digest(system.config(), mix), warmup_instructions);
  const auto snapshot = cache->get_or_warm(key, [&] {
    const auto timer = obs::global_phase_timers().scope("warmup");
    sim::System twin(system.config(), mix);
    twin.warm_up(warmup_instructions);
    return twin.save_state();
  });
  system.restore_state(*snapshot);
}

void run_variant_sweep(std::span<const SweepVariant> variants,
                       const trace::WorkloadMix& mix, const VariantSweepOptions& options,
                       const std::function<void(sim::System&, std::size_t)>& body) {
  SnapshotCache cache;
  if (!options.snapshot_bank.empty()) cache.set_file_bank(options.snapshot_bank);
  cache.set_mmap_reads(options.mmap);
  SnapshotCache* cache_ptr = options.snapshot_reuse ? &cache : nullptr;
  SystemPool system_pool;
  common::ThreadPool pool(options.num_threads);
  pool.parallel_for(variants.size(), [&](std::size_t index) {
    const SweepVariant& variant = variants[index];
    // Pooled path: variants sharing a config shape (repeat runs, warm-up
    // length sweeps) reuse one System per worker via reset_in_place —
    // byte-identical to fresh construction, minus the allocation storm.
    SystemPool::Lease lease;
    std::optional<sim::System> local;
    if (options.pool) {
      lease = system_pool.acquire(variant.config, mix);
      if (lease.pooled_hit()) lease->reset_in_place(mix);
    } else {
      local.emplace(variant.config, mix);
    }
    sim::System& system = options.pool ? *lease : *local;
    if (options.batch_size != 0) system.set_batch_size(options.batch_size);
    warm_system(system, mix, variant.warmup_instructions, cache_ptr,
                options.shared_warmup);
    body(system, index);
  });
}

}  // namespace bacp::harness
