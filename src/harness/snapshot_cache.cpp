#include "harness/snapshot_cache.hpp"

#include <exception>
#include <utility>

#include "common/thread_pool.hpp"
#include "harness/config_cli.hpp"
#include "obs/phase_timer.hpp"
#include "sim/system_config.hpp"

namespace bacp::harness {

SnapshotCache::SnapshotPtr SnapshotCache::get_or_warm(std::uint64_t key,
                                                      const WarmFn& warm) {
  std::shared_future<SnapshotPtr> future;
  std::shared_ptr<std::promise<SnapshotPtr>> owned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      owned = std::make_shared<std::promise<SnapshotPtr>>();
      future = owned->get_future().share();
      entries_.emplace(key, future);
    }
  }
  if (owned) {
    // Warm outside the lock: other keys proceed concurrently, and waiters
    // on this key block on the future, not the mutex.
    try {
      owned->set_value(std::make_shared<const snapshot::SystemSnapshot>(warm()));
    } catch (...) {
      owned->set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::uint64_t SnapshotCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SnapshotCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::vector<std::pair<std::string, std::string>> VariantSweepOptions::cli_flags() {
  return {
      value_flag(kThreadsKnob),
      bool_flag("no-snapshot-reuse", "warm every run cold instead of forking snapshots"),
      bool_flag("shared-warmup", "one policy-neutral warm-up per mix (changes results)"),
  };
}

VariantSweepOptions VariantSweepOptions::from_args(const common::ArgParser& parser) {
  VariantSweepOptions options;
  options.num_threads = read_threads(parser, options.num_threads);
  options.snapshot_reuse = !parser.get_bool_or_fail("no-snapshot-reuse", false);
  options.shared_warmup = parser.get_bool_or_fail("shared-warmup", false);
  return options;
}

std::uint64_t warmup_key(std::uint64_t state_digest, std::uint64_t warmup_instructions) {
  // Fold the warm-up length into the digest with one FNV-1a round per byte,
  // matching the hash family used for the digest itself.
  std::uint64_t hash = state_digest;
  for (unsigned shift = 0; shift < 64; shift += 8) {
    hash ^= (warmup_instructions >> shift) & 0xFF;
    hash *= 0x00000100000001B3ull;
  }
  return hash;
}

void warm_system(sim::System& system, const trace::WorkloadMix& mix,
                 std::uint64_t warmup_instructions, SnapshotCache* cache,
                 bool shared_warmup) {
  if (cache == nullptr) {
    const auto timer = obs::global_phase_timers().scope("warmup");
    system.warm_up(warmup_instructions);
    return;
  }
  if (shared_warmup) {
    const std::uint64_t key =
        warmup_key(sim::warm_state_digest(system.config(), mix), warmup_instructions);
    const auto snapshot = cache->get_or_warm(key, [&] {
      const auto timer = obs::global_phase_timers().scope("warmup");
      sim::System canonical(sim::canonical_warm_config(system.config()), mix);
      canonical.warm_up(warmup_instructions);
      return canonical.save_state();
    });
    system.adopt_warm_state(*snapshot);
    return;
  }
  const std::uint64_t key =
      warmup_key(sim::config_digest(system.config(), mix), warmup_instructions);
  const auto snapshot = cache->get_or_warm(key, [&] {
    const auto timer = obs::global_phase_timers().scope("warmup");
    sim::System twin(system.config(), mix);
    twin.warm_up(warmup_instructions);
    return twin.save_state();
  });
  system.restore_state(*snapshot);
}

void run_variant_sweep(std::span<const SweepVariant> variants,
                       const trace::WorkloadMix& mix, const VariantSweepOptions& options,
                       const std::function<void(sim::System&, std::size_t)>& body) {
  SnapshotCache cache;
  SnapshotCache* cache_ptr = options.snapshot_reuse ? &cache : nullptr;
  common::ThreadPool pool(options.num_threads);
  pool.parallel_for(variants.size(), [&](std::size_t index) {
    const SweepVariant& variant = variants[index];
    sim::System system(variant.config, mix);
    warm_system(system, mix, variant.warmup_instructions, cache_ptr,
                options.shared_warmup);
    body(system, index);
  });
}

}  // namespace bacp::harness
