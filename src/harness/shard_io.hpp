#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "harness/monte_carlo.hpp"

namespace bacp::harness {

/// One Monte-Carlo shard's result slice as a self-describing artifact: the
/// sweep shape it was cut from (so a merge can refuse mismatched slices),
/// plus every owned trial's mix and projected miss counts. Doubles travel
/// as IEEE-754 bit patterns, never as decimal text, so a merged summary is
/// bit-for-bit the summary the unsharded sweep computes.
struct ShardArtifact {
  std::uint32_t shards = 1;
  std::uint32_t shard_id = 0;
  std::uint64_t trials = 0;       ///< total trials of the unsharded sweep
  std::uint64_t seed = 0;
  std::uint64_t curve_depth = 0;
  /// Sampled-interval sweep shape (all zero-able; sampled_k == 0 means the
  /// sweep was analytic-only and the per-trial sampled columns carry
  /// default zeros). Folded into the digest, so shards of a sampled sweep
  /// can never merge with analytic shards of the same seed.
  std::uint32_t sampled_k = 0;
  std::uint32_t sampled_intervals = 0;
  std::uint64_t sampled_interval_instructions = 0;
  std::uint64_t sampled_warmup = 0;
  std::uint64_t config_digest = 0;

  struct OwnedTrial {
    std::uint64_t trial = 0;  ///< global trial index
    TrialResult result;
  };
  std::vector<OwnedTrial> owned;  ///< ascending by trial
};

/// Fingerprint of everything that determines a sweep's results: trials,
/// seed, curve depth and geometry — but not shards/shard_id (all slices of
/// one sweep must agree) and not num_threads (a pure speed dial).
std::uint64_t monte_carlo_digest(const MonteCarloConfig& config);

/// Packs a shard run's owned slice (the non-default entries of `summary`)
/// into an artifact. Works for shards == 1 too: the artifact then carries
/// the whole sweep.
ShardArtifact make_shard_artifact(const MonteCarloConfig& config,
                                  const MonteCarloSummary& summary);

/// Text round-trip. The format is line-oriented `key=value` with one
/// `trial=` row per owned trial; read_shard_artifact aborts on any
/// malformed or truncated input (artifacts are machine-written).
void write_shard_artifact(const ShardArtifact& artifact, std::ostream& out);
ShardArtifact read_shard_artifact(std::istream& in);

/// File round-trip. Saving goes through a temp file plus atomic rename so a
/// concurrent reader (another shard merging early) never sees a torn
/// artifact. The conventional name for a slice is `shard-<id>.shard`.
void save_shard_artifact(const ShardArtifact& artifact, const std::string& path);
ShardArtifact load_shard_artifact(const std::string& path);

/// Outcome of merging shard artifacts back into one sweep. `audit` records
/// the merge-legality verdict (audit::audit_shard_merge); on any violation
/// the summary is left empty and must not be used.
struct ShardMergeResult {
  audit::AuditReport audit;
  MonteCarloConfig config;     ///< sweep-shape echo (geometry left default)
  MonteCarloSummary summary;   ///< finalized, byte-identical to unsharded
};

/// Validates the artifact set with audit_shard_merge, then reassembles the
/// full trial vector and finalizes it. The merged summary and the report
/// built from it are byte-identical to a single-process run of the same
/// sweep.
ShardMergeResult merge_shard_artifacts(std::span<const ShardArtifact> artifacts);

}  // namespace bacp::harness
