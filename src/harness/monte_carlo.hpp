#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/args.hpp"
#include "obs/report.hpp"
#include "partition/partition_types.hpp"
#include "trace/mix.hpp"

namespace bacp::harness {

/// Configuration of the paper's Monte-Carlo methodology (Section IV-A):
/// random 8-workload mixes drawn with repetition from the 26-component
/// suite (a C(26+8-1, 8) ~ 14M state space), evaluated by MSA projection
/// rather than detailed simulation.
struct MonteCarloConfig {
  std::size_t trials = 1000;
  std::uint64_t seed = 2009;
  partition::CmpGeometry geometry;
  WayCount curve_depth = 128;
  std::size_t num_threads = 0;  ///< 0 = hardware concurrency
  /// Process sharding: trial t is owned by shard t % shards, so a sweep
  /// splits across machines without coordination. shards == 1 is the
  /// ordinary single-process sweep.
  std::uint32_t shards = 1;
  std::uint32_t shard_id = 0;
  /// Sampled-interval simulation (bacp::sampling): when > 0, every trial's
  /// mix is additionally run through the detailed simulator over
  /// `sampled_k` k-medoid-selected representative intervals and the full
  /// run is extrapolated with population weights and CIs. The analytic
  /// projection columns are computed either way; 0 = analytic only.
  std::uint32_t sampled_k = 0;
  std::uint32_t sampled_intervals = 96;
  std::uint64_t sampled_interval_instructions = 50'000;
  std::uint64_t sampled_warmup = 500'000;
  /// Directory for file-backed boundary snapshots shared across shard
  /// processes and repeated sweeps (SnapshotCache::set_file_bank); empty =
  /// in-memory reuse only. Sampled mode only — analytic trials never
  /// snapshot.
  std::string snapshot_bank;
  /// System pooling for sampled trials (harness::SystemPool): reuse one
  /// constructed System per worker via reset_in_place instead of paying
  /// construction per trial. Pure speed dial — artifacts are byte-identical
  /// either way (--pool=off / BACP_POOL=off disables for A/B checks).
  bool pool = true;
  /// Snapshot-bank read path: mmap zero-copy (default) or buffered reads
  /// (--mmap=off / BACP_MMAP=off). Pure speed dial, byte-identical results.
  bool mmap = true;

  MonteCarloConfig& with_trials(std::size_t value) {
    trials = value;
    return *this;
  }
  MonteCarloConfig& with_seed(std::uint64_t value) {
    seed = value;
    return *this;
  }
  MonteCarloConfig& with_geometry(const partition::CmpGeometry& value) {
    geometry = value;
    return *this;
  }
  MonteCarloConfig& with_curve_depth(WayCount value) {
    curve_depth = value;
    return *this;
  }
  MonteCarloConfig& with_num_threads(std::size_t value) {
    num_threads = value;
    return *this;
  }
  MonteCarloConfig& with_shards(std::uint32_t value) {
    shards = value;
    return *this;
  }
  MonteCarloConfig& with_shard_id(std::uint32_t value) {
    shard_id = value;
    return *this;
  }
  MonteCarloConfig& with_sampled_k(std::uint32_t value) {
    sampled_k = value;
    return *this;
  }
  MonteCarloConfig& with_sampled_intervals(std::uint32_t value) {
    sampled_intervals = value;
    return *this;
  }
  MonteCarloConfig& with_sampled_interval_instructions(std::uint64_t value) {
    sampled_interval_instructions = value;
    return *this;
  }
  MonteCarloConfig& with_sampled_warmup(std::uint64_t value) {
    sampled_warmup = value;
    return *this;
  }
  MonteCarloConfig& with_snapshot_bank(std::string value) {
    snapshot_bank = std::move(value);
    return *this;
  }
  MonteCarloConfig& with_pool(bool value) {
    pool = value;
    return *this;
  }
  MonteCarloConfig& with_mmap(bool value) {
    mmap = value;
    return *this;
  }

  /// The standard sweep flags (--trials, --seed, --threads) for binaries
  /// that run the Monte-Carlo evaluation; pair with from_args().
  static std::vector<std::pair<std::string, std::string>> cli_flags();

  /// Builds a config from parsed flags. Precedence: explicit flag, then the
  /// legacy BACP_MC_{TRIALS,SEED} / BACP_THREADS environment knobs, then
  /// the built-in defaults.
  static MonteCarloConfig from_args(const common::ArgParser& parser);
};

/// One random mix, with projected total miss counts under the three
/// capacity assignments compared in Fig. 7.
struct TrialResult {
  trace::WorkloadMix mix;
  double fixed_share_misses = 0.0;   ///< static even split (16 ways/core)
  double unrestricted_misses = 0.0;  ///< UCP-style, no banking restrictions
  double bank_aware_misses = 0.0;    ///< the paper's scheme

  /// Sampled-interval detailed-simulation extrapolation for this mix
  /// (sampled_k > 0 sweeps only); `evaluated` distinguishes "sampling off"
  /// from a genuine zero estimate so merges cannot silently mix modes.
  struct SampledTrial {
    bool evaluated = false;
    double miss_ratio = 0.0;
    double miss_ratio_ci_half = 0.0;
    double cpi = 0.0;
    double cpi_ci_half = 0.0;
  };
  SampledTrial sampled;

  double unrestricted_ratio() const { return unrestricted_misses / fixed_share_misses; }
  double bank_aware_ratio() const { return bank_aware_misses / fixed_share_misses; }
};

struct MonteCarloSummary {
  std::vector<TrialResult> trials;
  double mean_unrestricted_ratio = 0.0;  ///< paper: ~0.70 (30% reduction)
  double mean_bank_aware_ratio = 0.0;    ///< paper: ~0.73 (27% reduction)
  /// Sampled-sweep headline means; stay zero when sampling is off.
  double mean_sampled_miss_ratio = 0.0;
  double mean_sampled_cpi = 0.0;
};

/// Runs the sweep across a thread pool. Deterministic for a fixed seed
/// regardless of thread count (per-trial RNG streams). With config.shards
/// > 1 only the owned slice (trial % shards == shard_id) is evaluated:
/// unowned entries of the returned summary stay default-initialized and the
/// headline means stay zero — shard_io's merge reassembles the full trial
/// vector from every shard's artifact and finalizes the combined summary,
/// so the merged report is byte-identical to an unsharded run.
MonteCarloSummary run_monte_carlo(const MonteCarloConfig& config);

/// Computes the headline mean ratios from a *complete* trial vector (every
/// slot evaluated). Shared by the unsharded path and the shard merge; the
/// zero-miss assert fires on any unevaluated slot, so a summary with holes
/// cannot be finalized by accident.
void finalize_monte_carlo(MonteCarloSummary& summary);

/// The canonical Fig. 7 result artifact: headline mean ratios, the outlier
/// count (mixes where bank-aware lost to the fixed split), a ratio
/// distribution summary, and the sweep parameters as meta. Byte-identical
/// for a fixed seed regardless of config.num_threads — the determinism
/// contract the observability layer is tested against.
obs::Report monte_carlo_report(const MonteCarloConfig& config,
                               const MonteCarloSummary& summary);

}  // namespace bacp::harness
