#include "harness/shard_io.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "audit/shard_audit.hpp"
#include "common/assert.hpp"
#include "common/fsio.hpp"

namespace bacp::harness {

namespace {

constexpr const char* kMagicLine = "bacp_shard_v2";

/// FNV-1a fold of one 64-bit scalar, the repo's digest hash family.
std::uint64_t fold(std::uint64_t hash, std::uint64_t value) {
  for (unsigned shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= 0x00000100000001B3ull;
  }
  return hash;
}

/// Reads one "key=value" line and returns the value; aborts if the line is
/// missing or carries a different key.
std::string expect_field(std::istream& in, const char* key) {
  std::string line;
  BACP_ASSERT(static_cast<bool>(std::getline(in, line)), "shard artifact truncated");
  const std::size_t eq = line.find('=');
  BACP_ASSERT(eq != std::string::npos, "shard artifact line is not key=value");
  BACP_ASSERT(line.substr(0, eq) == key, "shard artifact field out of order");
  return line.substr(eq + 1);
}

std::uint64_t parse_u64(const std::string& text) {
  BACP_ASSERT(!text.empty(), "empty integer in shard artifact");
  std::uint64_t value = 0;
  for (const char c : text) {
    BACP_ASSERT(c >= '0' && c <= '9', "malformed integer in shard artifact");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::uint64_t parse_hex64(const std::string& text) {
  BACP_ASSERT(!text.empty(), "empty hex field in shard artifact");
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      BACP_ASSERT(false, "malformed hex field in shard artifact");
    }
    value = (value << 4) | digit;
  }
  return value;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

/// Doubles cross the artifact as bit patterns: decimal text would round and
/// the merged report would drift from the unsharded one.
std::string double_bits(double value) {
  return hex64(std::bit_cast<std::uint64_t>(value));
}

double bits_double(const std::string& text) {
  return std::bit_cast<double>(parse_hex64(text));
}

}  // namespace

std::uint64_t monte_carlo_digest(const MonteCarloConfig& config) {
  std::uint64_t hash = 0xCBF29CE484222325ull;  // FNV offset basis
  hash = fold(hash, config.trials);
  hash = fold(hash, config.seed);
  hash = fold(hash, config.curve_depth);
  hash = fold(hash, config.geometry.num_cores);
  hash = fold(hash, config.geometry.num_banks);
  hash = fold(hash, config.geometry.ways_per_bank);
  hash = fold(hash, config.sampled_k);
  hash = fold(hash, config.sampled_intervals);
  hash = fold(hash, config.sampled_interval_instructions);
  hash = fold(hash, config.sampled_warmup);
  return hash;
}

ShardArtifact make_shard_artifact(const MonteCarloConfig& config,
                                  const MonteCarloSummary& summary) {
  BACP_ASSERT(summary.trials.size() == config.trials,
              "summary does not match the config's trial count");
  ShardArtifact artifact;
  artifact.shards = config.shards;
  artifact.shard_id = config.shard_id;
  artifact.trials = config.trials;
  artifact.seed = config.seed;
  artifact.curve_depth = config.curve_depth;
  artifact.sampled_k = config.sampled_k;
  artifact.sampled_intervals = config.sampled_intervals;
  artifact.sampled_interval_instructions = config.sampled_interval_instructions;
  artifact.sampled_warmup = config.sampled_warmup;
  artifact.config_digest = monte_carlo_digest(config);
  for (std::uint64_t trial = config.shard_id; trial < config.trials;
       trial += config.shards) {
    artifact.owned.push_back({trial, summary.trials[trial]});
  }
  return artifact;
}

void write_shard_artifact(const ShardArtifact& artifact, std::ostream& out) {
  out << kMagicLine << '\n';
  out << "shards=" << artifact.shards << '\n';
  out << "shard_id=" << artifact.shard_id << '\n';
  out << "trials=" << artifact.trials << '\n';
  out << "seed=" << artifact.seed << '\n';
  out << "curve_depth=" << artifact.curve_depth << '\n';
  out << "sampled=" << artifact.sampled_k << '\n';
  out << "sampled_intervals=" << artifact.sampled_intervals << '\n';
  out << "sampled_interval_instr=" << artifact.sampled_interval_instructions << '\n';
  out << "sampled_warmup=" << artifact.sampled_warmup << '\n';
  out << "config_digest=" << hex64(artifact.config_digest) << '\n';
  out << "owned=" << artifact.owned.size() << '\n';
  for (const auto& entry : artifact.owned) {
    out << "trial=" << entry.trial << " mix=";
    for (std::size_t i = 0; i < entry.result.mix.workload_indices.size(); ++i) {
      if (i != 0) out << ',';
      out << entry.result.mix.workload_indices[i];
    }
    out << " fixed=" << double_bits(entry.result.fixed_share_misses)
        << " unrestricted=" << double_bits(entry.result.unrestricted_misses)
        << " bank=" << double_bits(entry.result.bank_aware_misses)
        << " smr=" << double_bits(entry.result.sampled.miss_ratio)
        << " sci=" << double_bits(entry.result.sampled.miss_ratio_ci_half)
        << " scpi=" << double_bits(entry.result.sampled.cpi)
        << " scci=" << double_bits(entry.result.sampled.cpi_ci_half) << '\n';
  }
}

ShardArtifact read_shard_artifact(std::istream& in) {
  std::string line;
  BACP_ASSERT(static_cast<bool>(std::getline(in, line)), "empty shard artifact");
  BACP_ASSERT(line == kMagicLine, "not a bacp shard artifact");

  ShardArtifact artifact;
  artifact.shards = static_cast<std::uint32_t>(parse_u64(expect_field(in, "shards")));
  artifact.shard_id =
      static_cast<std::uint32_t>(parse_u64(expect_field(in, "shard_id")));
  artifact.trials = parse_u64(expect_field(in, "trials"));
  artifact.seed = parse_u64(expect_field(in, "seed"));
  artifact.curve_depth = parse_u64(expect_field(in, "curve_depth"));
  artifact.sampled_k =
      static_cast<std::uint32_t>(parse_u64(expect_field(in, "sampled")));
  artifact.sampled_intervals =
      static_cast<std::uint32_t>(parse_u64(expect_field(in, "sampled_intervals")));
  artifact.sampled_interval_instructions =
      parse_u64(expect_field(in, "sampled_interval_instr"));
  artifact.sampled_warmup = parse_u64(expect_field(in, "sampled_warmup"));
  artifact.config_digest = parse_hex64(expect_field(in, "config_digest"));
  const std::uint64_t owned = parse_u64(expect_field(in, "owned"));

  artifact.owned.reserve(owned);
  for (std::uint64_t i = 0; i < owned; ++i) {
    BACP_ASSERT(static_cast<bool>(std::getline(in, line)), "shard artifact truncated");
    std::istringstream row(line);
    std::string token;
    ShardArtifact::OwnedTrial entry;

    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("trial="),
                "shard trial row missing trial field");
    entry.trial = parse_u64(token.substr(6));

    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("mix="),
                "shard trial row missing mix field");
    std::string indices = token.substr(4);
    std::size_t start = 0;
    while (start <= indices.size() && !indices.empty()) {
      const std::size_t comma = indices.find(',', start);
      const std::size_t end = comma == std::string::npos ? indices.size() : comma;
      entry.result.mix.workload_indices.push_back(
          static_cast<std::size_t>(parse_u64(indices.substr(start, end - start))));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }

    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("fixed="),
                "shard trial row missing fixed field");
    entry.result.fixed_share_misses = bits_double(token.substr(6));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("unrestricted="),
                "shard trial row missing unrestricted field");
    entry.result.unrestricted_misses = bits_double(token.substr(13));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("bank="),
                "shard trial row missing bank field");
    entry.result.bank_aware_misses = bits_double(token.substr(5));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("smr="),
                "shard trial row missing sampled miss-ratio field");
    entry.result.sampled.miss_ratio = bits_double(token.substr(4));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("sci="),
                "shard trial row missing sampled miss-ratio CI field");
    entry.result.sampled.miss_ratio_ci_half = bits_double(token.substr(4));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("scpi="),
                "shard trial row missing sampled CPI field");
    entry.result.sampled.cpi = bits_double(token.substr(5));
    BACP_ASSERT(static_cast<bool>(row >> token) && token.starts_with("scci="),
                "shard trial row missing sampled CPI CI field");
    entry.result.sampled.cpi_ci_half = bits_double(token.substr(5));
    // Evaluation mode is a sweep-level fact, carried by the header.
    entry.result.sampled.evaluated = artifact.sampled_k > 0;

    artifact.owned.push_back(std::move(entry));
  }
  return artifact;
}

void save_shard_artifact(const ShardArtifact& artifact, const std::string& path) {
  // Process-unique sibling temp: shard processes may share the output
  // directory, and publish_file_atomic handles a TMPDIR-relocated staging
  // file landing on a different filesystem (EXDEV copy fallback).
  const std::string temp = path + ".tmp." + std::to_string(artifact.shard_id);
  {
    std::ofstream out(temp, std::ios::trunc);
    BACP_ASSERT(out.is_open(), "cannot open shard artifact temp file for writing");
    write_shard_artifact(artifact, out);
    out.flush();
    BACP_ASSERT(out.good(), "short write while saving shard artifact");
  }
  BACP_ASSERT(common::publish_file_atomic(temp, path),
              "cannot publish shard artifact (rename failed)");
}

ShardArtifact load_shard_artifact(const std::string& path) {
  std::ifstream in(path);
  BACP_ASSERT(in.is_open(), "cannot open shard artifact for reading");
  return read_shard_artifact(in);
}

ShardMergeResult merge_shard_artifacts(std::span<const ShardArtifact> artifacts) {
  ShardMergeResult result;

  // Merge-legality first: shape agreement, shard-set completeness, per-trial
  // ownership/coverage. The auditor works from claims only — it never sees
  // the trial payloads — so a passing audit certifies the index structure,
  // and the reassembly below cannot double-count or drop a mix.
  std::vector<audit::ShardMergeInput> claims;
  claims.reserve(artifacts.size());
  for (const ShardArtifact& artifact : artifacts) {
    audit::ShardMergeInput claim;
    claim.shards = artifact.shards;
    claim.shard_id = artifact.shard_id;
    claim.trials = artifact.trials;
    claim.config_digest = artifact.config_digest;
    claim.trial_indices.reserve(artifact.owned.size());
    for (const auto& entry : artifact.owned) claim.trial_indices.push_back(entry.trial);
    claims.push_back(std::move(claim));
  }
  result.audit = audit::audit_shard_merge(claims);
  if (!result.audit.ok()) return result;

  const ShardArtifact& first = artifacts.front();
  result.config.trials = first.trials;
  result.config.seed = first.seed;
  result.config.curve_depth = static_cast<WayCount>(first.curve_depth);
  result.config.sampled_k = first.sampled_k;
  result.config.sampled_intervals = first.sampled_intervals;
  result.config.sampled_interval_instructions = first.sampled_interval_instructions;
  result.config.sampled_warmup = first.sampled_warmup;

  result.summary.trials.resize(first.trials);
  for (const ShardArtifact& artifact : artifacts) {
    for (const auto& entry : artifact.owned) {
      result.summary.trials[entry.trial] = entry.result;
    }
  }
  finalize_monte_carlo(result.summary);
  return result;
}

}  // namespace bacp::harness
