#include "harness/monte_carlo.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "msa/miss_curve.hpp"
#include "partition/bank_aware.hpp"
#include "partition/unrestricted.hpp"
#include "trace/spec2000.hpp"

namespace bacp::harness {

namespace {

/// Intensity-weighted analytic curves for a mix: curves carry projected
/// miss *counts per kilo-instruction*, so cores with heavier L2 traffic
/// dominate the Marginal Utility comparisons — mirroring live profilers,
/// whose histograms are absolute per-epoch counts.
std::vector<msa::MissRatioCurve> curves_for_mix(const trace::WorkloadMix& mix,
                                                WayCount depth) {
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  curves.reserve(mix.num_cores());
  for (const std::size_t index : mix.workload_indices) {
    const auto& model = suite.at(index);
    curves.push_back(msa::MissRatioCurve::from_model(model, depth).scaled(model.l2_apki));
  }
  return curves;
}

}  // namespace

MonteCarloSummary run_monte_carlo(const MonteCarloConfig& config) {
  BACP_ASSERT(config.trials > 0, "need at least one trial");
  config.geometry.validate();
  const auto& suite = trace::spec2000_suite();
  const WayCount even_share =
      config.geometry.total_ways() / config.geometry.num_cores;

  MonteCarloSummary summary;
  summary.trials.resize(config.trials);

  common::ThreadPool pool(config.num_threads);
  pool.parallel_for(config.trials, [&](std::size_t trial) {
    // Per-trial RNG stream: identical mixes regardless of thread count.
    common::Rng rng(config.seed, trial);
    TrialResult result;
    result.mix = trace::random_mix(rng, suite.size(), config.geometry.num_cores);
    const auto curves = curves_for_mix(result.mix, config.curve_depth);

    const std::vector<WayCount> even(config.geometry.num_cores, even_share);
    result.fixed_share_misses = partition::projected_total_misses(curves, even);

    const auto unrestricted =
        partition::unrestricted_partition(config.geometry, curves);
    result.unrestricted_misses =
        partition::projected_total_misses(curves, unrestricted.ways_per_core);

    const auto bank_aware = partition::bank_aware_partition(config.geometry, curves);
    result.bank_aware_misses = partition::projected_total_misses(
        curves, bank_aware.allocation.ways_per_core);

    summary.trials[trial] = std::move(result);
  });

  std::vector<double> unrestricted_ratios;
  std::vector<double> bank_ratios;
  unrestricted_ratios.reserve(config.trials);
  bank_ratios.reserve(config.trials);
  for (const auto& trial : summary.trials) {
    BACP_ASSERT(trial.fixed_share_misses > 0.0, "degenerate mix with zero misses");
    unrestricted_ratios.push_back(trial.unrestricted_ratio());
    bank_ratios.push_back(trial.bank_aware_ratio());
  }
  summary.mean_unrestricted_ratio = common::arithmetic_mean(unrestricted_ratios);
  summary.mean_bank_aware_ratio = common::arithmetic_mean(bank_ratios);
  return summary;
}

}  // namespace bacp::harness
