#include "harness/monte_carlo.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "harness/config_cli.hpp"
#include "harness/snapshot_cache.hpp"
#include "harness/system_pool.hpp"
#include "msa/miss_curve.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "partition/bank_aware.hpp"
#include "partition/unrestricted.hpp"
#include "sampling/sampled_run.hpp"
#include "trace/spec2000.hpp"

namespace bacp::harness {

std::vector<std::pair<std::string, std::string>> MonteCarloConfig::cli_flags() {
  return {
      value_flag(kTrialsKnob),
      value_flag(kMcSeedKnob),
      value_flag(kThreadsKnob),
      value_flag(kShardsKnob),
      value_flag(kShardIdKnob),
      value_flag(kSampledKnob),
      value_flag(kSampledIntervalsKnob),
      value_flag(kSampledIntervalInstrKnob),
      value_flag(kSampledWarmupKnob),
      value_flag(kSnapshotBankKnob),
      value_flag(kPoolKnob),
      value_flag(kMmapKnob),
  };
}

MonteCarloConfig MonteCarloConfig::from_args(const common::ArgParser& parser) {
  MonteCarloConfig config;
  config.trials = static_cast<std::size_t>(read_u64(parser, kTrialsKnob, config.trials));
  config.seed = read_u64(parser, kMcSeedKnob, config.seed);
  config.num_threads = read_threads(parser, config.num_threads);
  config.shards = static_cast<std::uint32_t>(read_u64(parser, kShardsKnob, config.shards));
  config.shard_id =
      static_cast<std::uint32_t>(read_u64(parser, kShardIdKnob, config.shard_id));
  config.sampled_k =
      static_cast<std::uint32_t>(read_u64(parser, kSampledKnob, config.sampled_k));
  config.sampled_intervals = static_cast<std::uint32_t>(
      read_u64(parser, kSampledIntervalsKnob, config.sampled_intervals));
  config.sampled_interval_instructions = read_u64(parser, kSampledIntervalInstrKnob,
                                                  config.sampled_interval_instructions);
  config.sampled_warmup = read_u64(parser, kSampledWarmupKnob, config.sampled_warmup);
  config.snapshot_bank = read_string(parser, kSnapshotBankKnob, config.snapshot_bank);
  config.pool = read_toggle(parser, kPoolKnob, config.pool);
  config.mmap = read_toggle(parser, kMmapKnob, config.mmap);
  return config;
}

namespace {

/// Intensity-weighted analytic curves for the whole suite: curves carry
/// projected miss *counts per kilo-instruction*, so cores with heavier L2
/// traffic dominate the Marginal Utility comparisons — mirroring live
/// profilers, whose histograms are absolute per-epoch counts. Built once
/// per sweep: a workload's curve depends only on (model, depth), so the
/// thousands of trials index this bank instead of re-deriving the same ~26
/// curves from the model each time.
std::vector<msa::MissRatioCurve> suite_curve_bank(WayCount depth) {
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> bank;
  bank.reserve(suite.size());
  for (const auto& model : suite) {
    bank.push_back(msa::MissRatioCurve::from_model(model, depth).scaled(model.l2_apki));
  }
  return bank;
}

/// Per-core curve views for one mix — pointers into the shared bank. The
/// partitioners and projected_total_misses take pointer spans, so a trial
/// never copies curve storage (a copy per trial was ~4% of the analytic
/// sweep).
std::vector<const msa::MissRatioCurve*> curves_for_mix(
    const trace::WorkloadMix& mix, std::span<const msa::MissRatioCurve> bank) {
  std::vector<const msa::MissRatioCurve*> curves;
  curves.reserve(mix.num_cores());
  for (const std::size_t index : mix.workload_indices) {
    BACP_ASSERT(index < bank.size(), "workload index outside the curve bank");
    curves.push_back(&bank[index]);
  }
  return curves;
}

/// sampling::SnapshotStore over the harness SnapshotCache: the sampled
/// engine's boundary states are memoized process-wide (and, with a file
/// bank, machine-wide) with the same future-based single-warm discipline
/// warm-state sweeps use.
class CacheSnapshotStore final : public sampling::SnapshotStore {
 public:
  explicit CacheSnapshotStore(SnapshotCache& cache) : cache_(&cache) {}
  SnapshotPtr get_or_warm(std::uint64_t key, const WarmFn& warm) override {
    return cache_->get_or_warm(key, warm);
  }

 private:
  SnapshotCache* cache_;
};

}  // namespace

MonteCarloSummary run_monte_carlo(const MonteCarloConfig& config) {
  BACP_ASSERT(config.trials > 0, "need at least one trial");
  BACP_ASSERT(config.shards > 0, "need at least one shard");
  BACP_ASSERT(config.shard_id < config.shards, "shard id outside [0, shards)");
  config.geometry.validate();
  const auto& suite = trace::spec2000_suite();
  const WayCount even_share =
      config.geometry.total_ways() / config.geometry.num_cores;

  MonteCarloSummary summary;
  summary.trials.resize(config.trials);

  // Owned slice: trial = shard_id, shard_id + shards, ... Trial RNG streams
  // are seeded by the *global* trial index, so shard k evaluates exactly the
  // mixes the unsharded sweep would assign to those slots.
  const std::size_t owned =
      config.trials > config.shard_id
          ? (config.trials - config.shard_id + config.shards - 1) / config.shards
          : 0;

  const auto timer = obs::global_phase_timers().scope("monte_carlo");
  const auto bank = suite_curve_bank(config.curve_depth);

  // Sampled-mode shared state: one interval-profile bank and one warm-state
  // cache serve every trial — both are thread-safe memoizations of
  // deterministic functions, so sharing them across ThreadPool workers (and
  // reusing nothing across shard processes) cannot perturb any trial's
  // bytes. The sim seed is the sweep seed: profiles, snapshot keys and
  // trial mixes all hang off the one number the artifact records.
  sim::SystemConfig sampled_config;
  std::unique_ptr<sampling::IntervalProfileBank> profile_bank;
  SnapshotCache snapshot_cache;
  std::unique_ptr<CacheSnapshotStore> snapshot_store;
  sampling::SampledRunConfig sampled_run;
  SystemPool system_pool;
  if (config.sampled_k > 0) {
    sampled_config = sampling::sampled_system_config(
        config.geometry, config.seed, config.sampled_interval_instructions);
    sampled_run.k = config.sampled_k;
    sampled_run.num_intervals = config.sampled_intervals;
    sampled_run.interval_instructions = config.sampled_interval_instructions;
    sampled_run.warmup_instructions = config.sampled_warmup;
    sampling::IntervalProfileConfig intervals;
    intervals.num_intervals = config.sampled_intervals;
    intervals.interval_instructions = config.sampled_interval_instructions;
    profile_bank =
        std::make_unique<sampling::IntervalProfileBank>(sampled_config, intervals);
    if (!config.snapshot_bank.empty()) {
      snapshot_cache.set_file_bank(config.snapshot_bank);
    }
    snapshot_cache.set_mmap_reads(config.mmap);
    snapshot_store = std::make_unique<CacheSnapshotStore>(snapshot_cache);
  }

  common::ThreadPool pool(config.num_threads);
  pool.parallel_for(owned, [&](std::size_t index) {
    const std::size_t trial = config.shard_id + index * config.shards;
    // Per-trial RNG stream: identical mixes regardless of thread count.
    common::Rng rng(config.seed, trial);
    TrialResult result;
    result.mix = trace::random_mix(rng, suite.size(), config.geometry.num_cores);
    const auto curves = curves_for_mix(result.mix, bank);

    const std::vector<WayCount> even(config.geometry.num_cores, even_share);
    result.fixed_share_misses = partition::projected_total_misses(curves, even);

    const auto unrestricted =
        partition::unrestricted_partition(config.geometry, curves);
    result.unrestricted_misses =
        partition::projected_total_misses(curves, unrestricted.ways_per_core);

    // Capacity phase only — the trial compares projected misses, so the
    // per-bank lowering (mask vectors, physical bank picks) is dead weight.
    const auto bank_aware = partition::bank_aware_capacity(config.geometry, curves);
    result.bank_aware_misses = partition::projected_total_misses(
        curves, bank_aware.allocation.ways_per_core);

    if (config.sampled_k > 0) {
      // Lease a pooled System for the trial (constructed once per worker,
      // rewound per trial by run_sampled_mix's reuse path); the lease
      // returns it to the pool when the trial's estimate is done.
      SystemPool::Lease lease;
      if (config.pool) lease = system_pool.acquire(sampled_config, result.mix);
      const sampling::SampledEstimate estimate =
          sampling::run_sampled_mix(sampled_config, result.mix, sampled_run,
                                    profile_bank.get(), snapshot_store.get(),
                                    lease.get());
      result.sampled.evaluated = true;
      result.sampled.miss_ratio = estimate.miss_ratio;
      result.sampled.miss_ratio_ci_half = estimate.miss_ratio_ci_half;
      result.sampled.cpi = estimate.cpi;
      result.sampled.cpi_ci_half = estimate.cpi_ci_half;
    }

    summary.trials[trial] = std::move(result);
  });

  // A shard carries holes by design; only a complete sweep finalizes here.
  if (config.shards == 1) finalize_monte_carlo(summary);
  return summary;
}

void finalize_monte_carlo(MonteCarloSummary& summary) {
  std::vector<double> unrestricted_ratios;
  std::vector<double> bank_ratios;
  unrestricted_ratios.reserve(summary.trials.size());
  bank_ratios.reserve(summary.trials.size());
  const bool sampled =
      !summary.trials.empty() && summary.trials.front().sampled.evaluated;
  std::vector<double> sampled_ratios;
  std::vector<double> sampled_cpis;
  for (const auto& trial : summary.trials) {
    BACP_ASSERT(trial.fixed_share_misses > 0.0, "degenerate mix with zero misses");
    // All-or-nothing: a merge that mixed sampled and analytic-only shards
    // would average incomparable quantities.
    BACP_ASSERT(trial.sampled.evaluated == sampled,
                "trial vector mixes sampled and unsampled entries");
    unrestricted_ratios.push_back(trial.unrestricted_ratio());
    bank_ratios.push_back(trial.bank_aware_ratio());
    if (sampled) {
      sampled_ratios.push_back(trial.sampled.miss_ratio);
      sampled_cpis.push_back(trial.sampled.cpi);
    }
  }
  summary.mean_unrestricted_ratio = common::arithmetic_mean(unrestricted_ratios);
  summary.mean_bank_aware_ratio = common::arithmetic_mean(bank_ratios);
  if (sampled) {
    summary.mean_sampled_miss_ratio = common::arithmetic_mean(sampled_ratios);
    summary.mean_sampled_cpi = common::arithmetic_mean(sampled_cpis);
  }
}

obs::Report monte_carlo_report(const MonteCarloConfig& config,
                               const MonteCarloSummary& summary) {
  obs::Report report("fig7_monte_carlo",
                     "Fig. 7: relative miss ratio to fixed-share (" +
                         std::to_string(summary.trials.size()) + " random mixes)");
  report.meta("trials", std::to_string(config.trials));
  report.meta("seed", std::to_string(config.seed));
  report.meta("curve_depth", std::to_string(config.curve_depth));

  // Sort by the Unrestricted reduction, as the paper does, and tabulate the
  // sorted series at percentile stations.
  std::vector<std::size_t> order(summary.trials.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return summary.trials[a].unrestricted_ratio() <
           summary.trials[b].unrestricted_ratio();
  });
  auto& series = report.table(
      "sorted_ratios", {"sorted position", "Unrestricted/fixed", "Bank-aware/fixed"});
  const std::size_t stations = std::min<std::size_t>(summary.trials.size(), 21);
  for (std::size_t s = 0; s < stations; ++s) {
    const std::size_t pos =
        stations == 1 ? 0 : s * (summary.trials.size() - 1) / (stations - 1);
    const auto& trial = summary.trials[order[pos]];
    series.begin_row()
        .cell(std::uint64_t{pos})
        .cell(trial.unrestricted_ratio())
        .cell(trial.bank_aware_ratio());
  }

  // Bank-aware never beats Unrestricted by construction; outliers are the
  // mixes where the banking restrictions cost more than 5 points.
  std::size_t outliers = 0;
  obs::Registry distributions;
  auto& bank_distribution = distributions.distribution("bank_aware_ratio");
  auto& unrestricted_distribution = distributions.distribution("unrestricted_ratio");
  for (const auto& trial : summary.trials) {
    unrestricted_distribution.observe(trial.unrestricted_ratio());
    bank_distribution.observe(trial.bank_aware_ratio());
    if (trial.bank_aware_ratio() > trial.unrestricted_ratio() + 0.05) ++outliers;
  }

  report.metric("mean_unrestricted_ratio", summary.mean_unrestricted_ratio);
  report.metric("mean_bank_aware_ratio", summary.mean_bank_aware_ratio);
  report.metric("outliers", std::uint64_t{outliers});
  report.metric("trials", std::uint64_t{summary.trials.size()});

  // Sampled-sweep block: present iff the sweep ran the detailed sampled
  // engine, so analytic-only reports stay byte-identical to before.
  if (config.sampled_k > 0) {
    report.meta("sampled", std::to_string(config.sampled_k));
    report.meta("sampled_intervals", std::to_string(config.sampled_intervals));
    report.meta("sampled_interval_instr",
                std::to_string(config.sampled_interval_instructions));
    report.meta("sampled_warmup", std::to_string(config.sampled_warmup));
    std::vector<double> sampled_ratios;
    sampled_ratios.reserve(summary.trials.size());
    for (const auto& trial : summary.trials) {
      sampled_ratios.push_back(trial.sampled.miss_ratio);
    }
    report.metric("mean_sampled_miss_ratio", summary.mean_sampled_miss_ratio);
    report.metric("mean_sampled_cpi", summary.mean_sampled_cpi);
    report.metric("sampled_miss_ratio_p50", common::percentile(sampled_ratios, 50.0));
    report.metric("sampled_miss_ratio_p95", common::percentile(sampled_ratios, 95.0));
  }
  report.note("paper: mean Unrestricted ~0.70, mean Bank-aware ~0.73; "
              "outliers (>5pt worse than Unrestricted) few");
  report.attach("ratio_distributions", distributions.to_json());
  return report;
}

}  // namespace bacp::harness
