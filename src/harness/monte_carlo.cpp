#include "harness/monte_carlo.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "harness/config_cli.hpp"
#include "msa/miss_curve.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "partition/bank_aware.hpp"
#include "partition/unrestricted.hpp"
#include "trace/spec2000.hpp"

namespace bacp::harness {

std::vector<std::pair<std::string, std::string>> MonteCarloConfig::cli_flags() {
  return {
      value_flag(kTrialsKnob),
      value_flag(kMcSeedKnob),
      value_flag(kThreadsKnob),
      value_flag(kShardsKnob),
      value_flag(kShardIdKnob),
  };
}

MonteCarloConfig MonteCarloConfig::from_args(const common::ArgParser& parser) {
  MonteCarloConfig config;
  config.trials = static_cast<std::size_t>(read_u64(parser, kTrialsKnob, config.trials));
  config.seed = read_u64(parser, kMcSeedKnob, config.seed);
  config.num_threads = read_threads(parser, config.num_threads);
  config.shards = static_cast<std::uint32_t>(read_u64(parser, kShardsKnob, config.shards));
  config.shard_id =
      static_cast<std::uint32_t>(read_u64(parser, kShardIdKnob, config.shard_id));
  return config;
}

namespace {

/// Intensity-weighted analytic curves for the whole suite: curves carry
/// projected miss *counts per kilo-instruction*, so cores with heavier L2
/// traffic dominate the Marginal Utility comparisons — mirroring live
/// profilers, whose histograms are absolute per-epoch counts. Built once
/// per sweep: a workload's curve depends only on (model, depth), so the
/// thousands of trials index this bank instead of re-deriving the same ~26
/// curves from the model each time.
std::vector<msa::MissRatioCurve> suite_curve_bank(WayCount depth) {
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> bank;
  bank.reserve(suite.size());
  for (const auto& model : suite) {
    bank.push_back(msa::MissRatioCurve::from_model(model, depth).scaled(model.l2_apki));
  }
  return bank;
}

/// Per-core curves for one mix, copied out of the precomputed bank.
std::vector<msa::MissRatioCurve> curves_for_mix(const trace::WorkloadMix& mix,
                                                std::span<const msa::MissRatioCurve> bank) {
  std::vector<msa::MissRatioCurve> curves;
  curves.reserve(mix.num_cores());
  for (const std::size_t index : mix.workload_indices) {
    BACP_ASSERT(index < bank.size(), "workload index outside the curve bank");
    curves.push_back(bank[index]);
  }
  return curves;
}

}  // namespace

MonteCarloSummary run_monte_carlo(const MonteCarloConfig& config) {
  BACP_ASSERT(config.trials > 0, "need at least one trial");
  BACP_ASSERT(config.shards > 0, "need at least one shard");
  BACP_ASSERT(config.shard_id < config.shards, "shard id outside [0, shards)");
  config.geometry.validate();
  const auto& suite = trace::spec2000_suite();
  const WayCount even_share =
      config.geometry.total_ways() / config.geometry.num_cores;

  MonteCarloSummary summary;
  summary.trials.resize(config.trials);

  // Owned slice: trial = shard_id, shard_id + shards, ... Trial RNG streams
  // are seeded by the *global* trial index, so shard k evaluates exactly the
  // mixes the unsharded sweep would assign to those slots.
  const std::size_t owned =
      config.trials > config.shard_id
          ? (config.trials - config.shard_id + config.shards - 1) / config.shards
          : 0;

  const auto timer = obs::global_phase_timers().scope("monte_carlo");
  const auto bank = suite_curve_bank(config.curve_depth);
  common::ThreadPool pool(config.num_threads);
  pool.parallel_for(owned, [&](std::size_t index) {
    const std::size_t trial = config.shard_id + index * config.shards;
    // Per-trial RNG stream: identical mixes regardless of thread count.
    common::Rng rng(config.seed, trial);
    TrialResult result;
    result.mix = trace::random_mix(rng, suite.size(), config.geometry.num_cores);
    const auto curves = curves_for_mix(result.mix, bank);

    const std::vector<WayCount> even(config.geometry.num_cores, even_share);
    result.fixed_share_misses = partition::projected_total_misses(curves, even);

    const auto unrestricted =
        partition::unrestricted_partition(config.geometry, curves);
    result.unrestricted_misses =
        partition::projected_total_misses(curves, unrestricted.ways_per_core);

    const auto bank_aware = partition::bank_aware_partition(config.geometry, curves);
    result.bank_aware_misses = partition::projected_total_misses(
        curves, bank_aware.allocation.ways_per_core);

    summary.trials[trial] = std::move(result);
  });

  // A shard carries holes by design; only a complete sweep finalizes here.
  if (config.shards == 1) finalize_monte_carlo(summary);
  return summary;
}

void finalize_monte_carlo(MonteCarloSummary& summary) {
  std::vector<double> unrestricted_ratios;
  std::vector<double> bank_ratios;
  unrestricted_ratios.reserve(summary.trials.size());
  bank_ratios.reserve(summary.trials.size());
  for (const auto& trial : summary.trials) {
    BACP_ASSERT(trial.fixed_share_misses > 0.0, "degenerate mix with zero misses");
    unrestricted_ratios.push_back(trial.unrestricted_ratio());
    bank_ratios.push_back(trial.bank_aware_ratio());
  }
  summary.mean_unrestricted_ratio = common::arithmetic_mean(unrestricted_ratios);
  summary.mean_bank_aware_ratio = common::arithmetic_mean(bank_ratios);
}

obs::Report monte_carlo_report(const MonteCarloConfig& config,
                               const MonteCarloSummary& summary) {
  obs::Report report("fig7_monte_carlo",
                     "Fig. 7: relative miss ratio to fixed-share (" +
                         std::to_string(summary.trials.size()) + " random mixes)");
  report.meta("trials", std::to_string(config.trials));
  report.meta("seed", std::to_string(config.seed));
  report.meta("curve_depth", std::to_string(config.curve_depth));

  // Sort by the Unrestricted reduction, as the paper does, and tabulate the
  // sorted series at percentile stations.
  std::vector<std::size_t> order(summary.trials.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return summary.trials[a].unrestricted_ratio() <
           summary.trials[b].unrestricted_ratio();
  });
  auto& series = report.table(
      "sorted_ratios", {"sorted position", "Unrestricted/fixed", "Bank-aware/fixed"});
  const std::size_t stations = std::min<std::size_t>(summary.trials.size(), 21);
  for (std::size_t s = 0; s < stations; ++s) {
    const std::size_t pos =
        stations == 1 ? 0 : s * (summary.trials.size() - 1) / (stations - 1);
    const auto& trial = summary.trials[order[pos]];
    series.begin_row()
        .cell(std::uint64_t{pos})
        .cell(trial.unrestricted_ratio())
        .cell(trial.bank_aware_ratio());
  }

  // Bank-aware never beats Unrestricted by construction; outliers are the
  // mixes where the banking restrictions cost more than 5 points.
  std::size_t outliers = 0;
  obs::Registry distributions;
  auto& bank_distribution = distributions.distribution("bank_aware_ratio");
  auto& unrestricted_distribution = distributions.distribution("unrestricted_ratio");
  for (const auto& trial : summary.trials) {
    unrestricted_distribution.observe(trial.unrestricted_ratio());
    bank_distribution.observe(trial.bank_aware_ratio());
    if (trial.bank_aware_ratio() > trial.unrestricted_ratio() + 0.05) ++outliers;
  }

  report.metric("mean_unrestricted_ratio", summary.mean_unrestricted_ratio);
  report.metric("mean_bank_aware_ratio", summary.mean_bank_aware_ratio);
  report.metric("outliers", std::uint64_t{outliers});
  report.metric("trials", std::uint64_t{summary.trials.size()});
  report.note("paper: mean Unrestricted ~0.70, mean Bank-aware ~0.73; "
              "outliers (>5pt worse than Unrestricted) few");
  report.attach("ratio_distributions", distributions.to_json());
  return report;
}

}  // namespace bacp::harness
