#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "audit/pool_audit.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

namespace bacp::harness {

/// Concurrent free-list of constructed sim::Systems, keyed by the
/// mix-independent sim::config_digest(config). Constructing a System is the
/// dominant setup cost of a short sampled trial — the generator recency
/// rings and the NUCA residency reserve alone fault in tens of megabytes —
/// while System::reset_in_place() rewinds all of that storage to
/// cold-construction state without touching the allocator. The pool turns
/// per-trial construction into per-worker construction: a trial leases a
/// pooled System when one with a matching config shape is idle and returns
/// it on lease destruction.
///
/// Contract: a leased System is in whatever state its previous trial left
/// behind. The consumer must rewind it with System::reset_in_place(mix)
/// before use — sampling::run_sampled_mix's `reuse` parameter does exactly
/// that, so harness callers routing through it never touch stale state.
/// Pooling is a pure speed dial: reset_in_place() restores
/// cold-construction state bit-exactly, so results are byte-identical with
/// the pool on or off (tests/test_equivalence.cpp proves it at the snapshot
/// level, the CI artifact matrix at the report level).
class SystemPool {
 public:
  /// Move-only handle to a leased System; returns it to the pool's idle
  /// list on destruction. An empty (default-constructed or moved-from)
  /// lease owns nothing and returns nothing.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), key_(other.key_), system_(std::move(other.system_)),
          pooled_hit_(other.pooled_hit_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        key_ = other.key_;
        system_ = std::move(other.system_);
        pooled_hit_ = other.pooled_hit_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    sim::System* get() const { return system_.get(); }
    sim::System& operator*() const { return *system_; }
    sim::System* operator->() const { return system_.get(); }

    /// True when this lease reuses a pooled System (its state is the
    /// previous trial's leftovers until reset_in_place); false for a fresh
    /// construction.
    bool pooled_hit() const { return pooled_hit_; }

   private:
    friend class SystemPool;
    Lease(SystemPool* pool, std::uint64_t key, std::unique_ptr<sim::System> system,
          bool pooled_hit)
        : pool_(pool), key_(key), system_(std::move(system)), pooled_hit_(pooled_hit) {}

    void release();

    SystemPool* pool_ = nullptr;
    std::uint64_t key_ = 0;
    std::unique_ptr<sim::System> system_;
    bool pooled_hit_ = false;
  };

  SystemPool() = default;
  SystemPool(const SystemPool&) = delete;
  SystemPool& operator=(const SystemPool&) = delete;

  /// A System for (config, mix): an idle pooled System whose construction
  /// config digests equal to `config`'s when one exists (see the class
  /// contract — rewind it before use), otherwise a fresh
  /// sim::System(config, mix). Construction runs outside the pool lock, so
  /// concurrent first-time callers build their Systems in parallel.
  Lease acquire(const sim::SystemConfig& config, const trace::WorkloadMix& mix);

  std::uint64_t hits() const BACP_EXCLUDES(mutex_);
  std::uint64_t misses() const BACP_EXCLUDES(mutex_);
  /// Systems currently parked in the idle lists (not leased out).
  std::uint64_t idle() const BACP_EXCLUDES(mutex_);
  /// Systems currently leased out (acquired, lease not yet destroyed).
  std::uint64_t outstanding() const BACP_EXCLUDES(mutex_);

  /// All four lease counters under one lock acquisition — the consistent
  /// snapshot audit_pool_bookkeeping() needs (reading the individual
  /// accessors back-to-back can tear across a concurrent acquire/release
  /// and falsely trip the conservation invariant).
  audit::PoolBookkeepingInput bookkeeping() const BACP_EXCLUDES(mutex_);

 private:
  void release(std::uint64_t key, std::unique_ptr<sim::System> system)
      BACP_EXCLUDES(mutex_);

  mutable common::Mutex mutex_;
  std::map<std::uint64_t, std::vector<std::unique_ptr<sim::System>>> idle_
      BACP_GUARDED_BY(mutex_);
  std::uint64_t hits_ BACP_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ BACP_GUARDED_BY(mutex_) = 0;
  std::uint64_t outstanding_ BACP_GUARDED_BY(mutex_) = 0;
};

}  // namespace bacp::harness
