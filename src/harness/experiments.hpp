#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/args.hpp"
#include "harness/snapshot_cache.hpp"
#include "nuca/dnuca_cache.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

namespace bacp::harness {

/// One of the paper's eight detailed-simulation workload sets (Table III),
/// with the way assignments the paper reports for its Bank-aware runs (for
/// side-by-side comparison; sets 1 and 3 as printed sum to <128, so exact
/// equality is not expected even of the authors' own allocator).
struct ExperimentSet {
  std::string label;
  std::vector<std::string> benchmarks;      // core0..core7
  std::vector<WayCount> paper_ways;         // paper's reported assignment
  trace::WorkloadMix mix() const;
};

/// The eight sets exactly as listed in Table III.
const std::vector<ExperimentSet>& table3_sets();

/// Scale knobs for the detailed simulations behind Figs. 8 and 9. The
/// paper warms for 100M instructions and measures 200M per core; defaults
/// here are scaled ~10x down so the full 8-set sweep runs in minutes.
struct DetailedRunConfig {
  std::uint64_t warmup_instructions = 8'000'000;    ///< per core
  std::uint64_t measure_instructions = 16'000'000;  ///< per core
  Cycle epoch_cycles = 8'000'000;
  nuca::AggregationKind aggregation = nuca::AggregationKind::Parallel;
  std::uint64_t seed = 42;
  /// Worker threads for multi-run sweeps (0 = hardware concurrency).
  /// Every run is an isolated System with its own seed-derived RNG
  /// streams, so results are identical for any worker count.
  std::size_t num_threads = 0;
  /// Warm once per distinct warm-state fingerprint and fork the snapshot
  /// into every run sharing it. Exact restore: artifacts stay byte-for-byte
  /// identical to cold per-run warm-up (--no-snapshot-reuse disables).
  bool snapshot_reuse = true;
  /// Opt-in (--shared-warmup): one policy-neutral warm-up per (mix, scale)
  /// adopted into every policy variant. Results change by design.
  bool shared_warmup = false;
  /// Access-pipeline batch size (0 = the System's own BACP_BATCH/default).
  /// Speed dial only: batching replays scalar, results are identical.
  std::uint32_t batch_size = 0;
  /// Directory for file-backed warm-state snapshots shared across processes
  /// (SnapshotCache::set_file_bank); empty = in-memory reuse only.
  std::string snapshot_bank;

  DetailedRunConfig& with_warmup_instructions(std::uint64_t value) {
    warmup_instructions = value;
    return *this;
  }
  DetailedRunConfig& with_measure_instructions(std::uint64_t value) {
    measure_instructions = value;
    return *this;
  }
  DetailedRunConfig& with_epoch_cycles(Cycle value) {
    epoch_cycles = value;
    return *this;
  }
  DetailedRunConfig& with_aggregation(nuca::AggregationKind value) {
    aggregation = value;
    return *this;
  }
  DetailedRunConfig& with_seed(std::uint64_t value) {
    seed = value;
    return *this;
  }
  /// Deprecated spellings kept for source compatibility: the sweep-execution
  /// knobs (threads, snapshot reuse, shared warm-up) are one shared struct
  /// now — prefer with_sweep() / sweep_options() so every harness, including
  /// sched::Service drivers, plumbs them identically.
  DetailedRunConfig& with_num_threads(std::size_t value) {
    num_threads = value;
    return *this;
  }
  DetailedRunConfig& with_snapshot_reuse(bool value) {
    snapshot_reuse = value;
    return *this;
  }
  DetailedRunConfig& with_shared_warmup(bool value) {
    shared_warmup = value;
    return *this;
  }
  DetailedRunConfig& with_batch_size(std::uint32_t value) {
    batch_size = value;
    return *this;
  }

  DetailedRunConfig& with_sweep(const VariantSweepOptions& sweep) {
    num_threads = sweep.num_threads;
    snapshot_reuse = sweep.snapshot_reuse;
    shared_warmup = sweep.shared_warmup;
    batch_size = sweep.batch_size;
    snapshot_bank = sweep.snapshot_bank;
    return *this;
  }
  VariantSweepOptions sweep_options() const {
    return VariantSweepOptions{}
        .with_num_threads(num_threads)
        .with_snapshot_reuse(snapshot_reuse)
        .with_shared_warmup(shared_warmup)
        .with_batch_size(batch_size)
        .with_snapshot_bank(snapshot_bank);
  }

  /// The standard scale flags (--warmup, --instr, --epoch, --seed,
  /// --threads, --batch-size, --no-snapshot-reuse, --shared-warmup) for
  /// binaries that drive detailed simulations; pair with from_args().
  static std::vector<std::pair<std::string, std::string>> cli_flags();

  /// Builds a config from parsed flags. Precedence: explicit flag, then the
  /// legacy BACP_SIM_{WARMUP,INSTR,EPOCH,SEED} environment knobs, then the
  /// built-in defaults.
  static DetailedRunConfig from_args(const common::ArgParser& parser);
};

/// Full-system results of one workload set under the three policies of the
/// paper's Section IV-B.
struct SetComparison {
  std::string label;
  sim::SystemResults none;
  sim::SystemResults equal;
  sim::SystemResults bank_aware;

  double equal_relative_misses() const;
  double bank_relative_misses() const;
  double equal_relative_cpi() const;
  double bank_relative_cpi() const;
};

/// Runs No-partition / Equal-partition / Bank-aware on one mix with
/// identical seeds (same reference streams) and returns the comparison.
/// The three policy runs are independent simulations and execute on a
/// ThreadPool of config.num_threads workers.
SetComparison run_set_comparison(const std::string& label, const trace::WorkloadMix& mix,
                                 const DetailedRunConfig& config);

/// Runs the full set x policy matrix for `sets` (Figs. 8 and 9 share this
/// sweep): all runs are flattened into one task list over a single
/// ThreadPool, so an 8-set sweep keeps every worker busy instead of
/// barriering after each set. Results come back in `sets` order and are
/// byte-for-byte independent of the worker count.
std::vector<SetComparison> run_detailed_sweep(std::span<const ExperimentSet> sets,
                                              const DetailedRunConfig& config);

}  // namespace bacp::harness
