#include "harness/experiments.hpp"

#include <array>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "harness/config_cli.hpp"
#include "harness/snapshot_cache.hpp"
#include "obs/phase_timer.hpp"

namespace bacp::harness {

std::vector<std::pair<std::string, std::string>> DetailedRunConfig::cli_flags() {
  std::vector<std::pair<std::string, std::string>> spec = {
      value_flag(kWarmupKnob),
      value_flag(kInstrKnob),
      value_flag(kEpochKnob),
      value_flag(kSimSeedKnob),
  };
  for (auto& row : VariantSweepOptions::cli_flags()) {
    spec.push_back(std::move(row));
  }
  return spec;
}

DetailedRunConfig DetailedRunConfig::from_args(const common::ArgParser& parser) {
  DetailedRunConfig config;
  config.warmup_instructions = read_u64(parser, kWarmupKnob, config.warmup_instructions);
  config.measure_instructions = read_u64(parser, kInstrKnob, config.measure_instructions);
  config.epoch_cycles = read_u64(parser, kEpochKnob, config.epoch_cycles);
  config.seed = read_u64(parser, kSimSeedKnob, config.seed);
  return config.with_sweep(VariantSweepOptions::from_args(parser));
}

trace::WorkloadMix ExperimentSet::mix() const { return trace::mix_from_names(benchmarks); }

const std::vector<ExperimentSet>& table3_sets() {
  static const std::vector<ExperimentSet> sets = {
      {"Set1",
       {"apsi", "galgel", "gcc", "mgrid", "applu", "mesa", "facerec", "gzip"},
       {12, 4, 2, 16, 16, 8, 56, 8}},
      {"Set2",
       {"crafty", "gap", "mcf", "art", "equake", "equake", "bzip2", "equake"},
       {12, 4, 24, 16, 8, 8, 48, 8}},
      {"Set3",
       {"applu", "galgel", "art", "art", "sixtrack", "gcc", "mgrid", "lucas"},
       {12, 4, 16, 16, 16, 6, 40, 16}},
      {"Set4",
       {"mgrid", "mcf", "art", "equake", "gcc", "equake", "sixtrack", "crafty"},
       {40, 24, 16, 16, 6, 10, 6, 10}},
      {"Set5",
       {"facerec", "fma3d", "sixtrack", "apsi", "fma3d", "ammp", "lucas", "swim"},
       {56, 8, 16, 16, 6, 10, 6, 10}},
      {"Set6",
       {"bzip2", "gcc", "twolf", "mesa", "wupwise", "applu", "fma3d", "ammp"},
       {48, 8, 16, 24, 6, 10, 6, 10}},
      {"Set7",
       {"swim", "parser", "mgrid", "twolf", "fma3d", "parser", "swim", "mcf"},
       {8, 16, 40, 16, 2, 14, 8, 24}},
      {"Set8",
       {"ammp", "eon", "swim", "gap", "gcc", "art", "twolf", "art"},
       {13, 3, 11, 5, 8, 16, 56, 16}},
  };
  return sets;
}

double SetComparison::equal_relative_misses() const {
  return common::ratio(static_cast<double>(equal.l2_misses()),
                       static_cast<double>(none.l2_misses()), 1.0);
}

double SetComparison::bank_relative_misses() const {
  return common::ratio(static_cast<double>(bank_aware.l2_misses()),
                       static_cast<double>(none.l2_misses()), 1.0);
}

double SetComparison::equal_relative_cpi() const {
  return common::ratio(equal.mean_cpi(), none.mean_cpi(), 1.0);
}

double SetComparison::bank_relative_cpi() const {
  return common::ratio(bank_aware.mean_cpi(), none.mean_cpi(), 1.0);
}

namespace {

sim::SystemResults run_policy(sim::PolicyKind policy, const trace::WorkloadMix& mix,
                              const DetailedRunConfig& config, SnapshotCache* cache) {
  sim::SystemConfig system_config = sim::SystemConfig::baseline();
  system_config.policy = policy;
  system_config.aggregation = config.aggregation;
  system_config.epoch_cycles = config.epoch_cycles;
  system_config.seed = config.seed;
  system_config.finalize();

  sim::System system(system_config, mix);
  if (config.batch_size != 0) system.set_batch_size(config.batch_size);
  warm_system(system, mix, config.warmup_instructions, cache, config.shared_warmup);
  {
    const auto timer = obs::global_phase_timers().scope("simulate");
    system.run(config.measure_instructions);
  }
  return system.results();
}

constexpr std::array<sim::PolicyKind, 3> kComparisonPolicies = {
    sim::PolicyKind::NoPartition, sim::PolicyKind::EqualPartition,
    sim::PolicyKind::BankAware};

void store_policy_result(SetComparison& comparison, std::size_t policy_index,
                         sim::SystemResults results) {
  switch (policy_index) {
    case 0: comparison.none = std::move(results); break;
    case 1: comparison.equal = std::move(results); break;
    default: comparison.bank_aware = std::move(results); break;
  }
}

}  // namespace

SetComparison run_set_comparison(const std::string& label, const trace::WorkloadMix& mix,
                                 const DetailedRunConfig& config) {
  SetComparison comparison;
  comparison.label = label;
  // Three independent simulations over the same reference streams (the
  // seed, not shared state, ties them together) — fan them out.
  SnapshotCache cache;
  if (!config.snapshot_bank.empty()) cache.set_file_bank(config.snapshot_bank);
  SnapshotCache* cache_ptr = config.snapshot_reuse ? &cache : nullptr;
  common::ThreadPool pool(config.num_threads);
  pool.parallel_for(kComparisonPolicies.size(), [&](std::size_t policy) {
    store_policy_result(
        comparison, policy,
        run_policy(kComparisonPolicies[policy], mix, config, cache_ptr));
  });
  BACP_ASSERT(comparison.none.l2_misses() > 0, "no misses in the baseline run");
  return comparison;
}

std::vector<SetComparison> run_detailed_sweep(std::span<const ExperimentSet> sets,
                                              const DetailedRunConfig& config) {
  std::vector<SetComparison> comparisons(sets.size());
  std::vector<trace::WorkloadMix> mixes;
  mixes.reserve(sets.size());
  for (const auto& set : sets) {
    mixes.push_back(set.mix());
  }
  // One flat set x policy task list: with per-set fan-out a fast set's
  // workers would idle while the slowest policy run of that set finishes.
  SnapshotCache cache;
  if (!config.snapshot_bank.empty()) cache.set_file_bank(config.snapshot_bank);
  SnapshotCache* cache_ptr = config.snapshot_reuse ? &cache : nullptr;
  common::ThreadPool pool(config.num_threads);
  pool.parallel_for(sets.size() * kComparisonPolicies.size(), [&](std::size_t task) {
    const std::size_t set_index = task / kComparisonPolicies.size();
    const std::size_t policy = task % kComparisonPolicies.size();
    store_policy_result(
        comparisons[set_index], policy,
        run_policy(kComparisonPolicies[policy], mixes[set_index], config, cache_ptr));
  });
  for (std::size_t i = 0; i < sets.size(); ++i) {
    comparisons[i].label = sets[i].label;
    BACP_ASSERT(comparisons[i].none.l2_misses() > 0, "no misses in the baseline run");
  }
  return comparisons;
}

}  // namespace bacp::harness
