#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/args.hpp"

namespace bacp::harness {

/// One scale knob: a `--flag=value` backed by an environment variable, read
/// with the standard precedence explicit flag > environment > built-in
/// default. Every config struct's cli_flags()/from_args() pair is assembled
/// from these, so a new binary cannot invent a fourth precedence order or
/// mistype an env name for a knob the rest of the repo already has.
struct EnvFlag {
  const char* flag;  ///< flag name, without "--" or the trailing '='
  const char* env;   ///< backing environment variable; "" = flag-only
  const char* help;  ///< help text; the "(env NAME)" suffix is appended
};

using FlagSpec = std::vector<std::pair<std::string, std::string>>;

/// ArgParser spec row for a value knob: "name=" plus help text with the
/// "(env NAME)" suffix when the knob is environment-backed.
std::pair<std::string, std::string> value_flag(const EnvFlag& knob);

/// ArgParser spec row for a plain boolean flag (no value, no env backing).
std::pair<std::string, std::string> bool_flag(const char* flag, const char* help);

/// Reads a knob with the standard precedence. Malformed input (flag or env)
/// is fatal, exactly as the underlying strict accessors define it.
std::uint64_t read_u64(const common::ArgParser& parser, const EnvFlag& knob,
                       std::uint64_t fallback);
double read_double(const common::ArgParser& parser, const EnvFlag& knob, double fallback);
std::string read_string(const common::ArgParser& parser, const EnvFlag& knob,
                        const std::string& fallback);

/// The repo-wide scale knobs. Binaries that take one of these MUST take it
/// through the shared definition; the names and env vars are part of the
/// artifact-reproduction contract (they are echoed into report meta).
inline constexpr EnvFlag kWarmupKnob{"warmup", "BACP_SIM_WARMUP",
                                     "warm-up instructions per core"};
inline constexpr EnvFlag kInstrKnob{"instr", "BACP_SIM_INSTR",
                                    "measured instructions per core"};
inline constexpr EnvFlag kEpochKnob{"epoch", "BACP_SIM_EPOCH", "epoch length in cycles"};
inline constexpr EnvFlag kSimSeedKnob{"seed", "BACP_SIM_SEED", "simulation seed"};
inline constexpr EnvFlag kTrialsKnob{"trials", "BACP_MC_TRIALS", "Monte-Carlo trial count"};
inline constexpr EnvFlag kMcSeedKnob{"seed", "BACP_MC_SEED", "Monte-Carlo seed"};
inline constexpr EnvFlag kThreadsKnob{"threads", "BACP_THREADS",
                                      "worker threads, 0 = hardware"};
inline constexpr EnvFlag kBatchKnob{"batch-size", "BACP_BATCH",
                                    "access pipeline batch size, 0 = built-in default"};
inline constexpr EnvFlag kShardsKnob{"shards", "BACP_MC_SHARDS",
                                     "Monte-Carlo process shard count"};
inline constexpr EnvFlag kShardIdKnob{"shard-id", "BACP_MC_SHARD_ID",
                                      "this process's shard index in [0, shards)"};
inline constexpr EnvFlag kSnapshotBankKnob{
    "snapshot-bank", "BACP_SNAPSHOT_BANK",
    "directory for file-backed warm-state snapshots, empty = in-memory only"};
inline constexpr EnvFlag kSampledKnob{
    "sampled", "BACP_MC_SAMPLED",
    "detailed intervals simulated per sampled Monte-Carlo trial, 0 = analytic only"};
inline constexpr EnvFlag kSampledIntervalsKnob{
    "sampled-intervals", "BACP_MC_SAMPLED_INTERVALS",
    "intervals a sampled trial's run is cut into"};
inline constexpr EnvFlag kSampledIntervalInstrKnob{
    "sampled-interval-instr", "BACP_MC_SAMPLED_INTERVAL_INSTR",
    "instructions per core per sampled interval"};
inline constexpr EnvFlag kSampledWarmupKnob{
    "sampled-warmup", "BACP_MC_SAMPLED_WARMUP",
    "detailed warm-up instructions before a sampled trial's first interval"};
inline constexpr EnvFlag kPoolKnob{
    "pool", "BACP_POOL",
    "System pooling for sampled trials and sweeps: auto|off (speed dial; "
    "results are byte-identical either way)"};
inline constexpr EnvFlag kMmapKnob{
    "mmap", "BACP_MMAP",
    "snapshot-bank read path: auto = mmap zero-copy, off = buffered "
    "(speed dial; results are byte-identical either way)"};

/// The shared `--threads` / BACP_THREADS knob. Every sweep in the repo is
/// deterministic for any worker count, so this is purely a speed dial.
std::size_t read_threads(const common::ArgParser& parser, std::size_t fallback = 0);

/// Reads an auto/off speed-dial knob (kPoolKnob, kMmapKnob): "auto" or "on"
/// enables, "off" disables, anything else is a fatal usage error. These
/// knobs never change results — the artifact matrix in CI proves it — so
/// their values are not echoed into report meta.
bool read_toggle(const common::ArgParser& parser, const EnvFlag& knob, bool fallback);

}  // namespace bacp::harness
