#include "harness/config_cli.hpp"

#include "common/env.hpp"

namespace bacp::harness {

std::pair<std::string, std::string> value_flag(const EnvFlag& knob) {
  std::string help = knob.help;
  if (knob.env[0] != '\0') {
    help += " (env ";
    help += knob.env;
    help += ")";
  }
  return {std::string(knob.flag) + "=", std::move(help)};
}

std::pair<std::string, std::string> bool_flag(const char* flag, const char* help) {
  return {flag, help};
}

std::uint64_t read_u64(const common::ArgParser& parser, const EnvFlag& knob,
                       std::uint64_t fallback) {
  const std::uint64_t backed =
      knob.env[0] != '\0' ? common::env_u64(knob.env, fallback) : fallback;
  return parser.get_u64_or_fail(knob.flag, backed);
}

double read_double(const common::ArgParser& parser, const EnvFlag& knob, double fallback) {
  const double backed =
      knob.env[0] != '\0' ? common::env_double(knob.env, fallback) : fallback;
  return parser.get_double_or_fail(knob.flag, backed);
}

std::string read_string(const common::ArgParser& parser, const EnvFlag& knob,
                        const std::string& fallback) {
  const std::string backed =
      knob.env[0] != '\0' ? common::env_string(knob.env, fallback) : fallback;
  return parser.get(knob.flag, backed);
}

std::size_t read_threads(const common::ArgParser& parser, std::size_t fallback) {
  return static_cast<std::size_t>(read_u64(parser, kThreadsKnob, fallback));
}

bool read_toggle(const common::ArgParser& parser, const EnvFlag& knob, bool fallback) {
  const std::string text = read_string(parser, knob, fallback ? "auto" : "off");
  if (text == "auto" || text == "on") return true;
  if (text == "off") return false;
  parser.fatal_usage("--" + std::string(knob.flag) + "=" + text +
                     ": expected auto, on, or off");
}

}  // namespace bacp::harness
