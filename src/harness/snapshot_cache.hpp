#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/args.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

namespace bacp::harness {

/// Concurrent warm-state cache for sweep harnesses: snapshots keyed by a
/// warm-state fingerprint (config digest + warm-up length), computed at most
/// once. The first caller of a key runs the warm-up outside the lock while
/// later callers of the same key block on a shared future, so a sweep whose
/// variants share a fingerprint pays for exactly one warm-up no matter how
/// many ThreadPool workers race for it.
class SnapshotCache {
 public:
  using SnapshotPtr = std::shared_ptr<const snapshot::SystemSnapshot>;
  using WarmFn = std::function<snapshot::SystemSnapshot()>;

  /// Returns the snapshot stored under `key`, invoking `warm` to produce it
  /// if this is the key's first caller. `warm` runs outside the cache lock;
  /// concurrent callers for the same key wait for its result instead of
  /// warming redundantly.
  SnapshotPtr get_or_warm(std::uint64_t key, const WarmFn& warm);

  /// File-backed mode: snapshots persist in `directory` as `<16-hex-key>.snap`
  /// (the raw snapshot buffer, mmap-ably flat). A first caller whose key is
  /// on disk loads and audit-validates the file instead of warming; a failed
  /// validation discards the file's bytes and rewarms (the bank is a pure
  /// cache — a corrupt entry can cost time, never correctness). Freshly
  /// warmed snapshots are published via temp file + atomic rename, so
  /// concurrent shard processes sharing one bank never read a torn file.
  /// Empty string disables (the default, in-memory only).
  void set_file_bank(std::string directory) BACP_EXCLUDES(mutex_);
  std::string file_bank() const BACP_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return bank_directory_;
  }

  /// Bank read path: mmap zero-copy (default) or buffered ifstream reads.
  /// Pure speed dial — a loaded snapshot passes the same structural audit
  /// (including per-section checksums computed from the mapped region) and
  /// restores byte-identically either way; BACP_MMAP=off exists so the CI
  /// artifact matrix can prove it.
  void set_mmap_reads(bool enabled) BACP_EXCLUDES(mutex_);

  std::uint64_t hits() const BACP_EXCLUDES(mutex_);
  std::uint64_t misses() const BACP_EXCLUDES(mutex_);
  std::uint64_t file_hits() const BACP_EXCLUDES(mutex_);

 private:
  // The disk-bank helpers take the bank directory as a parameter: the warm
  // path runs outside the lock by design, so it works on a copy of
  // bank_directory_ taken under the lock rather than re-reading the member.
  static std::string bank_path(const std::string& directory, std::uint64_t key);
  /// Disk probe for `key`: loaded-and-validated snapshot or nullptr. With
  /// `mmap_reads` the snapshot adopts the mapped file zero-copy (the map is
  /// validated fail-closed before it is returned); otherwise the bytes are
  /// read into an owned buffer.
  static SnapshotPtr try_load(const std::string& directory, std::uint64_t key,
                              bool mmap_reads);
  static void store(const std::string& directory, std::uint64_t key,
                    const snapshot::SystemSnapshot& snapshot);

  mutable common::Mutex mutex_;
  std::map<std::uint64_t, std::shared_future<SnapshotPtr>> entries_
      BACP_GUARDED_BY(mutex_);
  std::string bank_directory_ BACP_GUARDED_BY(mutex_);
  bool mmap_reads_ BACP_GUARDED_BY(mutex_) = true;
  std::uint64_t hits_ BACP_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ BACP_GUARDED_BY(mutex_) = 0;
  std::uint64_t file_hits_ BACP_GUARDED_BY(mutex_) = 0;
};

/// Cache key for a warm-up: warm state is a pure function of the config
/// digest (sim::config_digest or sim::warm_state_digest) and the number of
/// warm-up instructions, so the key folds both together.
std::uint64_t warmup_key(std::uint64_t state_digest, std::uint64_t warmup_instructions);

/// Brings `system` to its warm starting point. With `cache == nullptr` this
/// is a plain cold warm-up. With a cache and `shared_warmup == false`, the
/// warm-up runs once per exact warm-state fingerprint
/// (sim::config_digest + warm-up length) and the system is restored
/// bit-identically from the snapshot — artifacts are byte-for-byte the same
/// as cold warm-up. With `shared_warmup == true`, one policy-neutral warm-up
/// per (mix, scale) under sim::canonical_warm_config() is adopted into every
/// variant via System::adopt_warm_state() — results change by design.
void warm_system(sim::System& system, const trace::WorkloadMix& mix,
                 std::uint64_t warmup_instructions, SnapshotCache* cache,
                 bool shared_warmup);

/// One point of a configuration sweep: a finalized config plus its warm-up
/// length, labelled for reports.
struct SweepVariant {
  std::string label;
  sim::SystemConfig config;  ///< must be finalized
  std::uint64_t warmup_instructions = 0;
};

struct VariantSweepOptions {
  /// Worker threads (0 = hardware concurrency). Variants are independent
  /// simulations, so results are identical for any worker count.
  std::size_t num_threads = 0;
  /// Warm once per distinct warm-state fingerprint and fork the snapshot
  /// (byte-identical to cold warm-up); off = always warm cold.
  bool snapshot_reuse = true;
  /// Opt-in: share one canonical warm-up across all variants of a mix
  /// (changes results by design — see warm_system()).
  bool shared_warmup = false;
  /// Access-pipeline batch size applied to every variant's System
  /// (0 = keep the System's own BACP_BATCH/default). Pure speed dial:
  /// batching replays scalar, so results are identical for any value.
  std::uint32_t batch_size = 0;
  /// Directory for file-backed warm snapshots shared across processes
  /// (SnapshotCache::set_file_bank); empty = in-memory reuse only.
  std::string snapshot_bank;
  /// Reuse constructed Systems across variants with identical configs via
  /// harness::SystemPool + reset_in_place (--pool=off / BACP_POOL=off
  /// disables). Pure speed dial: byte-identical results either way.
  bool pool = true;
  /// Snapshot-bank read path: mmap zero-copy or buffered (--mmap=off /
  /// BACP_MMAP=off). Pure speed dial: byte-identical results either way.
  bool mmap = true;

  VariantSweepOptions& with_num_threads(std::size_t value) {
    num_threads = value;
    return *this;
  }
  VariantSweepOptions& with_batch_size(std::uint32_t value) {
    batch_size = value;
    return *this;
  }
  VariantSweepOptions& with_snapshot_bank(std::string value) {
    snapshot_bank = std::move(value);
    return *this;
  }
  VariantSweepOptions& with_snapshot_reuse(bool value) {
    snapshot_reuse = value;
    return *this;
  }
  VariantSweepOptions& with_shared_warmup(bool value) {
    shared_warmup = value;
    return *this;
  }
  VariantSweepOptions& with_pool(bool value) {
    pool = value;
    return *this;
  }
  VariantSweepOptions& with_mmap(bool value) {
    mmap = value;
    return *this;
  }

  /// The shared sweep-execution flags (--threads, --batch-size,
  /// --no-snapshot-reuse, --shared-warmup); every sweep binary takes
  /// exactly these, and the config structs that embed sweep knobs
  /// (DetailedRunConfig, sched::ServiceConfig drivers) forward here
  /// instead of re-declaring them. Pair with from_args().
  static std::vector<std::pair<std::string, std::string>> cli_flags();

  /// Standard precedence: explicit flag, then BACP_THREADS, then defaults.
  static VariantSweepOptions from_args(const common::ArgParser& parser);
};

/// Runs every variant over a ThreadPool: construct the variant's System,
/// bring it to its warm point via warm_system(), then hand it to `body`
/// along with the variant index. `body` must write its findings into
/// caller-owned per-index slots (it runs concurrently); emitting rows in
/// variant order afterwards keeps artifacts independent of the thread count.
void run_variant_sweep(std::span<const SweepVariant> variants,
                       const trace::WorkloadMix& mix, const VariantSweepOptions& options,
                       const std::function<void(sim::System&, std::size_t)>& body);

}  // namespace bacp::harness
