#include "core/core_timer.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <limits>

#include "common/assert.hpp"
#include "snapshot/codec.hpp"

namespace bacp::core {

CoreTimer::CoreTimer(const CoreTimerConfig& config)
    : config_(config), rng_(config.seed, config.core) {
  BACP_ASSERT(config_.base_cpi > 0.0, "base_cpi must be positive");
  BACP_ASSERT(config_.instructions_per_l2_access > 0.0,
              "instructions_per_l2_access must be positive");
  BACP_ASSERT(config_.mlp_window >= 1, "mlp_window must be >= 1");
  BACP_ASSERT(config_.gap_jitter >= 0.0 && config_.gap_jitter < 1.0,
              "gap_jitter must be in [0, 1)");
  // record_completion() bounds the window at mlp_window, with one slot of
  // transient overshoot before trimming.
  outstanding_.reserve(config_.mlp_window + 1);
}

double CoreTimer::next_gap_cycles() const {
  if (pending_gap_ < 0.0) {
    const double jitter =
        1.0 + config_.gap_jitter * (2.0 * rng_.next_double() - 1.0);
    pending_gap_ = config_.instructions_per_l2_access * config_.base_cpi * jitter;
  }
  return pending_gap_;
}

Cycle CoreTimer::peek_issue() const {
  double t = time_ + next_gap_cycles();
  // MLP window: if `mlp_window` accesses are still in flight at t, issue
  // waits for the earliest of them to complete. Scans the heap storage in
  // place — order is irrelevant for a count plus a running minimum.
  if (outstanding_.size() >= config_.mlp_window) {
    std::uint32_t in_flight_at_t = 0;
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& entry : outstanding_) {
      if (entry.done_at > t) {
        ++in_flight_at_t;
        earliest = std::min(earliest, entry.done_at);
      }
    }
    if (in_flight_at_t >= config_.mlp_window) t = earliest;
  }
  // ROB drain: the oldest in-flight access may pin the ROB.
  if (!outstanding_.empty()) {
    const double next_instr = instructions_ + config_.instructions_per_l2_access;
    for (const auto& entry : outstanding_) {
      if (next_instr - entry.issued_at_instruction >
          static_cast<double>(config_.rob_entries)) {
        t = std::max(t, entry.done_at);
      }
    }
  }
  return static_cast<Cycle>(t);
}

Cycle CoreTimer::advance_to_issue() {
  const double issue = static_cast<double>(peek_issue());
  pending_gap_ = -1.0;  // consume the drawn gap
  time_ = issue;
  instructions_ += config_.instructions_per_l2_access;
  retire_completed();
  return static_cast<Cycle>(issue);
}

void CoreTimer::retire_completed() {
  while (!outstanding_.empty() && outstanding_.front().done_at <= time_) {
    std::pop_heap(outstanding_.begin(), outstanding_.end(), std::greater<>{});
    outstanding_.pop_back();
  }
}

void CoreTimer::record_completion(Cycle done_at) {
  outstanding_.push_back({static_cast<double>(done_at), instructions_});
  std::push_heap(outstanding_.begin(), outstanding_.end(), std::greater<>{});
  // Invariant: the window can exceed mlp_window only transiently within a
  // peek/advance pair; enforce it here.
  while (outstanding_.size() > config_.mlp_window) {
    time_ = std::max(time_, outstanding_.front().done_at);
    std::pop_heap(outstanding_.begin(), outstanding_.end(), std::greater<>{});
    outstanding_.pop_back();
  }
}

void CoreTimer::drain() {
  // The original loop popped in ascending done_at order, so the net effect
  // is a single max over the window.
  for (const auto& entry : outstanding_) time_ = std::max(time_, entry.done_at);
  outstanding_.clear();
}

double CoreTimer::cpi() const {
  return instructions_ == 0.0 ? 0.0 : time_ / instructions_;
}

void CoreTimer::rebind(const CoreTimerConfig& config) {
  BACP_ASSERT(config.core == config_.core, "rebind may not move the timer across cores");
  BACP_ASSERT(config.base_cpi > 0.0, "base_cpi must be positive");
  BACP_ASSERT(config.instructions_per_l2_access > 0.0,
              "instructions_per_l2_access must be positive");
  BACP_ASSERT(config.mlp_window >= 1, "mlp_window must be >= 1");
  config_ = config;
  rng_ = common::Rng(config.seed, config.core);
  pending_gap_ = -1.0;
  outstanding_.reserve(config_.mlp_window + 1);
  // A shrunken MLP window must not leave an oversized in-flight set behind.
  while (outstanding_.size() > config_.mlp_window) {
    time_ = std::max(time_, outstanding_.front().done_at);
    std::pop_heap(outstanding_.begin(), outstanding_.end(), std::greater<>{});
    outstanding_.pop_back();
  }
}

void CoreTimer::reset_in_place(const CoreTimerConfig& config) {
  BACP_ASSERT(config.base_cpi > 0.0, "base_cpi must be positive");
  BACP_ASSERT(config.instructions_per_l2_access > 0.0,
              "instructions_per_l2_access must be positive");
  BACP_ASSERT(config.mlp_window >= 1, "mlp_window must be >= 1");
  BACP_ASSERT(config.gap_jitter >= 0.0 && config.gap_jitter < 1.0,
              "gap_jitter must be in [0, 1)");
  config_ = config;
  rng_ = common::Rng(config.seed, config.core);
  time_ = 0.0;
  instructions_ = 0.0;
  mark_time_ = 0.0;
  mark_instructions_ = 0.0;
  pending_gap_ = -1.0;
  outstanding_.clear();
  outstanding_.reserve(config_.mlp_window + 1);
}

void CoreTimer::mark() {
  mark_time_ = time_;
  mark_instructions_ = instructions_;
}

double CoreTimer::cpi_since_mark() const {
  const double instr = instructions_since_mark();
  return instr == 0.0 ? 0.0 : cycles_since_mark() / instr;
}

void CoreTimer::save_state(snapshot::Writer& writer) const {
  writer.u32(config_.core);
  for (const std::uint64_t word : rng_.state()) writer.u64(word);
  writer.f64(time_);
  writer.f64(instructions_);
  writer.f64(mark_time_);
  writer.f64(mark_instructions_);
  writer.f64(pending_gap_);
  // Heap-array order, not sorted: restoring the exact array reproduces the
  // exact heap, so subsequent pushes/pops are bit-identical.
  writer.u64(outstanding_.size());
  for (const InFlight& entry : outstanding_) {
    writer.f64(entry.done_at);
    writer.f64(entry.issued_at_instruction);
  }
}

void CoreTimer::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == config_.core, "snapshot core id mismatch");
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = reader.u64();
  rng_.set_state(rng_state);
  time_ = reader.f64();
  instructions_ = reader.f64();
  mark_time_ = reader.f64();
  mark_instructions_ = reader.f64();
  pending_gap_ = reader.f64();
  const std::uint64_t in_flight = reader.u64();
  BACP_ASSERT(in_flight <= config_.mlp_window + 1, "snapshot MLP window overflow");
  outstanding_.clear();
  for (std::uint64_t i = 0; i < in_flight; ++i) {
    InFlight entry;
    entry.done_at = reader.f64();
    entry.issued_at_instruction = reader.f64();
    outstanding_.push_back(entry);
  }
}

}  // namespace bacp::core
