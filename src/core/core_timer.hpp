#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::core {

/// Timing abstraction of one out-of-order core (Table I: 4 GHz, 30-stage,
/// 4-wide, 128-entry ROB, 16 outstanding requests). The model executes the
/// non-memory instruction stream at the workload's base CPI and overlaps
/// L2 accesses up to a memory-level-parallelism window:
///   - between consecutive L2 accesses the core retires
///     `instructions_per_l2_access` instructions in
///     `instructions_per_l2_access x base_cpi` cycles (jittered to avoid
///     lock-step artifacts across cores);
///   - up to `mlp_window` accesses may be in flight; the window models the
///     ROB's ability to run ahead of outstanding misses, capped by the
///     MSHR count;
///   - an access older than `rob_entries` instructions blocks further
///     issue until it completes (ROB drain).
/// CPI falls out of the simulation rather than a closed formula, so bank
/// queueing, DRAM channel contention and partition-latency differences all
/// surface in Fig. 9-style results.
struct CoreTimerConfig {
  double base_cpi = 0.7;
  double instructions_per_l2_access = 100.0;
  std::uint32_t mlp_window = 2;
  std::uint32_t rob_entries = 128;
  double gap_jitter = 0.5;  ///< uniform +-50% spread on inter-access gaps
  std::uint64_t seed = 1;
  CoreId core = 0;
};

class CoreTimer {
 public:
  explicit CoreTimer(const CoreTimerConfig& config);

  /// Issue time of the next L2 access if it were issued now (includes MLP
  /// and ROB stalls). Does not mutate state.
  Cycle peek_issue() const;

  /// Executes the gap instructions and stalls; returns the actual issue
  /// time of the access. Must be followed by record_completion().
  Cycle advance_to_issue();

  /// Registers the memory system's completion time for the just-issued
  /// access.
  void record_completion(Cycle done_at);

  /// Waits for all outstanding accesses (end of simulation).
  void drain();

  double instructions() const { return instructions_; }
  Cycle time() const { return static_cast<Cycle>(time_); }
  double cpi() const;

  /// Rebinds the timer to a new workload's timing parameters mid-run (a
  /// tenant admission reusing this core slot): the clocks, marks and the
  /// in-flight window carry over — global time never rewinds — while the
  /// gap model, MLP window and RNG stream are rebuilt from `config`. The
  /// pre-drawn gap is discarded so the first gap of the new tenant comes
  /// from its own stream.
  void rebind(const CoreTimerConfig& config);

  /// Rewinds the timer to the state a fresh `CoreTimer(config)` would have
  /// — clocks, marks and the in-flight window at zero, a fresh RNG stream —
  /// without freeing the window's storage. Unlike rebind(), which carries
  /// the clocks forward for a mid-run tenant swap, this is a cold reset:
  /// snapshot bytes afterwards match a fresh timer's.
  void reset_in_place(const CoreTimerConfig& config);

  /// Advances the local clock to `now` if it is behind (never rewinds).
  /// Used when a core slot rejoins the simulation after sitting idle: its
  /// first access must issue at current global time, not at the frozen
  /// clock of its previous tenant.
  void fast_forward(Cycle now) {
    time_ = std::max(time_, static_cast<double>(now));
  }

  /// Snapshots the measurement-window start (end of cache warm-up).
  void mark();
  double instructions_since_mark() const { return instructions_ - mark_instructions_; }
  double cycles_since_mark() const { return time_ - mark_time_; }
  double cpi_since_mark() const;

  const CoreTimerConfig& config() const { return config_; }

  /// Serializes the RNG state, clocks, marks, the pre-drawn gap and the
  /// in-flight window (in heap-array order, so restore is bit-exact).
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  friend class audit::ComponentAuditor;
  friend struct TimerTestPeer;  ///< mutation hooks for the audit kill-tests

  struct InFlight {
    double done_at = 0.0;
    double issued_at_instruction = 0.0;
    bool operator>(const InFlight& other) const { return done_at > other.done_at; }
  };

  double next_gap_cycles() const;
  void retire_completed();

  CoreTimerConfig config_;
  mutable common::Rng rng_;
  double time_ = 0.0;
  double instructions_ = 0.0;
  double mark_time_ = 0.0;
  double mark_instructions_ = 0.0;
  // Pre-drawn jittered gap so peek_issue() and advance_to_issue() agree;
  // mutable because peeking may need to draw it.
  mutable double pending_gap_ = -1.0;
  // Min-heap on done_at (std::push_heap/pop_heap with std::greater). A raw
  // vector instead of std::priority_queue so peek_issue() can scan the
  // window in place — the simulator peeks at least twice per access, and
  // copying a priority_queue heap-allocates every time.
  std::vector<InFlight> outstanding_;
};

}  // namespace bacp::core
