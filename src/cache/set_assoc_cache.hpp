#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace bacp::audit {
class CacheAuditor;
class NucaAuditor;
}  // namespace bacp::audit

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::cache {

/// One cache line's bookkeeping. Addresses are block-granular, so the full
/// block address doubles as the tag (the set index is re-derivable).
struct Line {
  BlockAddress block = 0;
  CoreId allocator = kInvalidCore;  ///< core whose allocation brought it in
  bool valid = false;
  bool dirty = false;
};

/// Result of a lookup or fill.
struct LookupResult {
  bool hit = false;
  WayIndex way = 0;
};

struct FillResult {
  WayIndex way = 0;
  std::optional<Line> evicted;  ///< set when a valid line was displaced
};

/// Per-core hit/miss/eviction counters for one cache structure.
struct CacheStats {
  std::vector<std::uint64_t> hits;
  std::vector<std::uint64_t> misses;
  std::vector<std::uint64_t> evictions;

  explicit CacheStats(std::size_t num_cores = 0)
      : hits(num_cores, 0), misses(num_cores, 0), evictions(num_cores, 0) {}

  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  std::uint64_t total_accesses() const { return total_hits() + total_misses(); }
  double miss_ratio() const;
  void clear();
};

/// Set-associative cache with true LRU and the paper's *vertical fine-grain
/// cache-way partitioning* (Section III-B, after Iyer's CQoS): every way
/// carries a core mask, identical across all sets of the structure, and a
/// modified LRU victim policy only ever replaces a line in a way the
/// requesting core owns — so workloads in disjoint ways cannot evict each
/// other's data.
///
/// Storage is structure-of-arrays: probes scan a contiguous per-set tag
/// column (one or two cache lines for an 8-way set) instead of striding
/// over Line structs, validity/dirtiness are per-set bitmasks, and recency
/// is an intrusive doubly-linked list per set so touch-to-MRU, demote-to-LRU
/// and victim selection are O(1)/O(ways) pointer updates with no
/// vector shuffling. Behavior is bit-identical to the straightforward
/// `vector<Line>` + `vector<WayIndex> lru_order` formulation (see
/// tests/test_equivalence.cpp, which replays both against random streams).
class SetAssocCache {
 public:
  struct Config {
    std::string name = "cache";
    std::uint32_t num_sets = 64;
    WayCount ways = 8;
    std::uint32_t num_cores = 1;  ///< width of the statistics arrays
  };

  explicit SetAssocCache(const Config& config);

  /// LRU-updating lookup. On a hit the line moves to MRU and `is_write`
  /// marks it dirty. A hit is legal in *any* way (partitioning restricts
  /// replacement, not lookup — exactly as in the paper).
  LookupResult access(BlockAddress block, CoreId core, bool is_write);

  /// Installs a block for `core`, evicting (modified-LRU) from the ways the
  /// core owns. Precondition: the block is not present and the core owns at
  /// least one way.
  FillResult fill(BlockAddress block, CoreId core, bool dirty);

  /// access() hit path when the caller already knows the way the block
  /// occupies (e.g. from the DNUCA residency index): counts the hit, moves
  /// the line to MRU and applies the write's dirty bit — identical
  /// side effects to a hitting access(), minus the tag scan.
  void touch_hit(BlockAddress block, WayIndex way, CoreId core, bool is_write);

  /// mark_dirty() with the way already known.
  void mark_dirty_at(BlockAddress block, WayIndex way);

  /// invalidate() with the way already known. Precondition: the line is
  /// valid and holds `block`.
  Line invalidate_at(BlockAddress block, WayIndex way);

  /// Non-perturbing presence check.
  bool probe(BlockAddress block) const;

  /// Marks a resident block dirty without touching LRU state (used for
  /// writeback updates arriving from the level above). Returns false when
  /// the block is not resident.
  bool mark_dirty(BlockAddress block);

  /// Removes a block if present; returns its prior contents.
  std::optional<Line> invalidate(BlockAddress block);

  /// Least-recently-used valid line of the set that holds `block`'s set
  /// index, restricted to ways owned by `core` (used by the Cascade
  /// aggregation to demote down the chain). Empty if all such ways are
  /// invalid.
  std::optional<Line> lru_line_for_core(BlockAddress block, CoreId core) const;

  /// Mutation-free preview of the block a fill(block, core, ...) would
  /// evict right now: empty when the core owns an invalid way (no eviction)
  /// or owns no ways at all. Prefetch-planning hint for the batched
  /// pipeline — any mutation between peek and fill can change the real
  /// victim, costing only a wasted prefetch.
  std::optional<BlockAddress> peek_victim(BlockAddress block, CoreId core) const;

  /// Replaces the per-way core masks. Resident lines are untouched: after a
  /// repartition, stale data in reassigned ways is displaced naturally by
  /// the new owner's fills (paper Section III-B).
  void set_way_partition(const std::vector<CoreMask>& masks);
  const std::vector<CoreMask>& way_partition() const { return way_masks_; }

  /// Number of ways owned by `core`.
  WayCount ways_owned(CoreId core) const;

  const Config& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void clear_stats() { stats_.clear(); }

  /// Rewinds the cache to its just-constructed state — all lines invalid,
  /// construction recency order, unpartitioned way masks, zero statistics —
  /// without freeing or reallocating any storage. A snapshot taken after
  /// reset_in_place() is byte-identical to one taken after construction.
  void reset_in_place();

  /// Count of valid lines (for occupancy tests).
  std::uint64_t valid_lines() const;

  /// Serializes the full mutable state (lines, recency lists, partition
  /// masks, statistics) for warm-state snapshots. Restore asserts the
  /// snapshot's geometry echo matches this cache's configuration; identical
  /// state always serializes to identical bytes.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

  /// Snapshot of every valid line (invariant checks and debugging; O(size)).
  std::vector<Line> resident_lines() const;

  std::uint32_t set_index(BlockAddress block) const {
    return static_cast<std::uint32_t>(block & (config_.num_sets - 1));
  }

  /// True iff `block` is valid in this bank at exactly `way` — one valid-bit
  /// plus one tag compare, no recency effects. The batched pipeline's replay
  /// certifies a probe-stage hit verdict with this: a block resides in at
  /// most one bank, so a matching valid tag *is* the residency, and the
  /// replay can skip re-probing the residency index. Any intra-batch
  /// displacement (eviction, migration) fails the check and the lane falls
  /// back to the full lookup.
  bool holds_at(BlockAddress block, WayIndex way) const {
    const std::uint32_t set = set_index(block);
    return ((meta_[set].valid >> way) & 1u) != 0 &&
           tags_[line_index(set, way)] == block;
  }

  /// Read-prefetches the set metadata, tag column and recency links for
  /// `block`'s set. The batched pipeline issues these one batch ahead of
  /// the authoritative scalar replay so the per-set lines are warm.
  void prefetch_set(BlockAddress block) const {
    const std::uint32_t set = set_index(block);
    common::simd::prefetch_read(&meta_[set]);
    common::simd::prefetch_read(tags_.data() + line_index(set, 0));
    common::simd::prefetch_read(links_.data() + link_index(set, 0));
  }

 private:
  /// The structural auditor reads raw link bytes and metadata bitmasks;
  /// the test peer plants corruptions for the auditor's kill-tests. Only
  /// these two may bypass the public API.
  friend class audit::CacheAuditor;
  friend class audit::NucaAuditor;  // reads per-slot lines for residency checks
  friend struct CacheTestPeer;

  /// Intrusive-list terminator ("no way"); fits the byte-wide link arrays.
  static constexpr std::uint8_t kNil = 0xFF;

  /// One set's bookkeeping, packed so an access touches a single cache
  /// line of metadata: validity/dirtiness bitmasks (bit w == way w) plus
  /// the recency list's endpoints (head == MRU, tail == LRU).
  struct SetMeta {
    std::uint64_t valid = 0;
    std::uint64_t dirty = 0;
    std::uint8_t head = 0;
    std::uint8_t tail = 0;
  };

  std::size_t line_index(std::uint32_t set, WayIndex way) const {
    return std::size_t{set} * config_.ways + way;
  }
  std::size_t link_index(std::uint32_t set, WayIndex way) const {
    return (std::size_t{set} * config_.ways + way) * 2;
  }
  Line line_at(std::uint32_t set, WayIndex way) const;
  void detach(std::uint32_t set, WayIndex way);
  void push_mru(std::uint32_t set, WayIndex way);
  void push_lru(std::uint32_t set, WayIndex way);
  void touch_mru(std::uint32_t set, WayIndex way);
  std::optional<LookupResult> find(BlockAddress block) const;
  void rebuild_owned_ways();

  Config config_;
  // Per-line columns (num_sets * ways, way-major within a set). Tags of one
  // set are contiguous so the probe loop reads a single cache line or two.
  std::vector<BlockAddress> tags_;
  std::vector<CoreId> allocators_;
  std::vector<SetMeta> meta_;
  // Per-set intrusive recency list: byte-wide prev/next pairs, interleaved
  // ([link_index + 0] == prev, [+ 1] == next) so one set's whole list is
  // 2 * ways contiguous bytes.
  std::vector<std::uint8_t> links_;
  std::vector<CoreMask> way_masks_;
  // Per-core bitmask of owned ways, derived from way_masks_ so the fill
  // path finds "first invalid owned way" with one countr_zero.
  // NOLINTNEXTLINE(bacp-snapshot-fields): derived from way_masks_; rebuilt by rebuild_owned_ways() on restore
  std::vector<std::uint64_t> owned_ways_;
  CacheStats stats_;
};

}  // namespace bacp::cache
