#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bacp::cache {

/// Truncated-tag identification (Kessler et al., "Inexpensive
/// implementations of set-associativity"). The MSA profiler and the
/// Parallel bank-aggregation directory both identify blocks by a small
/// hash of the tag instead of the full tag; distinct blocks may alias,
/// which is exactly the error source the profiler-accuracy ablation
/// quantifies.
///
/// The hash mixes all tag bits (Fibonacci multiplicative hashing) before
/// truncation so aliasing behaves like random collisions rather than
/// tracking low-bit address patterns.
inline std::uint32_t partial_tag(BlockAddress tag_bits, std::uint32_t width_bits) {
  if (width_bits >= 32) width_bits = 32;
  const std::uint64_t mixed = tag_bits * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>(mixed >> (64 - width_bits));
}

}  // namespace bacp::cache
