#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace bacp::cache {

/// Truncated-tag identification (Kessler et al., "Inexpensive
/// implementations of set-associativity"). The MSA profiler and the
/// Parallel bank-aggregation directory both identify blocks by a small
/// hash of the tag instead of the full tag; distinct blocks may alias,
/// which is exactly the error source the profiler-accuracy ablation
/// quantifies.
///
/// The hash mixes all tag bits (Fibonacci multiplicative hashing) before
/// truncation so aliasing behaves like random collisions rather than
/// tracking low-bit address patterns.
inline std::uint32_t partial_tag(BlockAddress tag_bits, std::uint32_t width_bits) {
  if (width_bits >= 32) width_bits = 32;
  const std::uint64_t mixed = tag_bits * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>(mixed >> (64 - width_bits));
}

/// Batched partial_tag over a contiguous tag-bits column: out[i] ==
/// partial_tag(tag_bits[i], width_bits), zero-extended to the 64-bit
/// entries the profiler stacks store. width_bits must be >= 1 (callers
/// branch to full tags at width 0, same as the scalar form). Dispatches
/// through common/simd.hpp; bit-identical across tiers.
inline void partial_tags(const BlockAddress* tag_bits, std::uint64_t* out,
                         std::size_t count, std::uint32_t width_bits) {
  if (width_bits >= 32) width_bits = 32;
  common::simd::mix_to_partial_tags(tag_bits, out, count, width_bits);
}

}  // namespace bacp::cache
