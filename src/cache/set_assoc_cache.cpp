#include "cache/set_assoc_cache.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/assert.hpp"
#include "snapshot/codec.hpp"

namespace bacp::cache {

std::uint64_t CacheStats::total_hits() const {
  return std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
}

std::uint64_t CacheStats::total_misses() const {
  return std::accumulate(misses.begin(), misses.end(), std::uint64_t{0});
}

double CacheStats::miss_ratio() const {
  const std::uint64_t total = total_accesses();
  return total == 0 ? 0.0 : static_cast<double>(total_misses()) / static_cast<double>(total);
}

void CacheStats::clear() {
  std::fill(hits.begin(), hits.end(), 0);
  std::fill(misses.begin(), misses.end(), 0);
  std::fill(evictions.begin(), evictions.end(), 0);
}

SetAssocCache::SetAssocCache(const Config& config)
    : config_(config), stats_(config.num_cores) {
  BACP_ASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  BACP_ASSERT(config_.ways >= 1, "cache needs at least one way");
  BACP_ASSERT(config_.ways <= 64, "per-set bitmasks support at most 64 ways");
  BACP_ASSERT(config_.num_cores >= 1, "cache needs at least one core");
  const std::size_t lines = std::size_t{config_.num_sets} * config_.ways;
  tags_.assign(lines, 0);
  allocators_.assign(lines, kInvalidCore);
  SetMeta initial;
  initial.head = 0;
  initial.tail = static_cast<std::uint8_t>(config_.ways - 1);
  meta_.assign(config_.num_sets, initial);
  links_.resize(lines * 2);
  // Initial recency order: way 0 MRU .. way (ways-1) LRU, matching the
  // iota-initialized lru_order of the reference formulation.
  for (std::uint32_t set = 0; set < config_.num_sets; ++set) {
    for (WayIndex way = 0; way < config_.ways; ++way) {
      links_[link_index(set, way)] =
          way == 0 ? kNil : static_cast<std::uint8_t>(way - 1);
      links_[link_index(set, way) + 1] =
          way + 1 == config_.ways ? kNil : static_cast<std::uint8_t>(way + 1);
    }
  }
  // Default: every core owns every way (unpartitioned shared cache).
  way_masks_.assign(config_.ways, ~CoreMask{0});
  rebuild_owned_ways();
}

void SetAssocCache::reset_in_place() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(allocators_.begin(), allocators_.end(), kInvalidCore);
  SetMeta initial;
  initial.head = 0;
  initial.tail = static_cast<std::uint8_t>(config_.ways - 1);
  std::fill(meta_.begin(), meta_.end(), initial);
  for (std::uint32_t set = 0; set < config_.num_sets; ++set) {
    for (WayIndex way = 0; way < config_.ways; ++way) {
      links_[link_index(set, way)] =
          way == 0 ? kNil : static_cast<std::uint8_t>(way - 1);
      links_[link_index(set, way) + 1] =
          way + 1 == config_.ways ? kNil : static_cast<std::uint8_t>(way + 1);
    }
  }
  std::fill(way_masks_.begin(), way_masks_.end(), ~CoreMask{0});
  rebuild_owned_ways();
  stats_.clear();
}

Line SetAssocCache::line_at(std::uint32_t set, WayIndex way) const {
  const std::size_t index = line_index(set, way);
  Line line;
  line.block = tags_[index];
  line.allocator = allocators_[index];
  line.valid = ((meta_[set].valid >> way) & 1) != 0;
  line.dirty = ((meta_[set].dirty >> way) & 1) != 0;
  return line;
}

void SetAssocCache::detach(std::uint32_t set, WayIndex way) {
  std::uint8_t* links = links_.data() + link_index(set, 0);
  const std::uint8_t prev = links[way * 2];
  const std::uint8_t next = links[way * 2 + 1];
  if (prev == kNil) {
    meta_[set].head = next;
  } else {
    links[std::size_t{prev} * 2 + 1] = next;
  }
  if (next == kNil) {
    meta_[set].tail = prev;
  } else {
    links[std::size_t{next} * 2] = prev;
  }
}

void SetAssocCache::push_mru(std::uint32_t set, WayIndex way) {
  std::uint8_t* links = links_.data() + link_index(set, 0);
  const std::uint8_t old_head = meta_[set].head;
  links[way * 2] = kNil;
  links[way * 2 + 1] = old_head;
  if (old_head == kNil) {
    meta_[set].tail = static_cast<std::uint8_t>(way);
  } else {
    links[std::size_t{old_head} * 2] = static_cast<std::uint8_t>(way);
  }
  meta_[set].head = static_cast<std::uint8_t>(way);
}

void SetAssocCache::push_lru(std::uint32_t set, WayIndex way) {
  std::uint8_t* links = links_.data() + link_index(set, 0);
  const std::uint8_t old_tail = meta_[set].tail;
  links[way * 2 + 1] = kNil;
  links[way * 2] = old_tail;
  if (old_tail == kNil) {
    meta_[set].head = static_cast<std::uint8_t>(way);
  } else {
    links[std::size_t{old_tail} * 2 + 1] = static_cast<std::uint8_t>(way);
  }
  meta_[set].tail = static_cast<std::uint8_t>(way);
}

void SetAssocCache::touch_mru(std::uint32_t set, WayIndex way) {
  if (meta_[set].head == way) return;
  detach(set, way);
  push_mru(set, way);
}

std::optional<LookupResult> SetAssocCache::find(BlockAddress block) const {
  const std::uint32_t set = set_index(block);
  const std::uint64_t valid = meta_[set].valid;
  if (valid == 0) return std::nullopt;
  const BlockAddress* tags = tags_.data() + line_index(set, 0);
  // Vectorized first-match scan over the contiguous tag column. A matching
  // tag in an *invalid* way (stale bytes left by invalidate) must not stop
  // the search — resume past it, exactly as the scalar way loop would.
  WayIndex way = 0;
  while (way < config_.ways) {
    const std::uint32_t found =
        common::simd::find_first_equal_u64(tags + way, config_.ways - way, block);
    if (found == common::simd::kLaneNotFound) break;
    way = static_cast<WayIndex>(way + found);
    if (((valid >> way) & 1) != 0) return LookupResult{true, way};
    ++way;
  }
  return std::nullopt;
}

LookupResult SetAssocCache::access(BlockAddress block, CoreId core, bool is_write) {
  BACP_DASSERT(core < config_.num_cores, "core id out of range");
  const std::uint32_t set = set_index(block);
  if (const auto found = find(block)) {
    ++stats_.hits[core];
    touch_mru(set, found->way);
    if (is_write) meta_[set].dirty |= std::uint64_t{1} << found->way;
    return *found;
  }
  ++stats_.misses[core];
  return LookupResult{false, 0};
}

FillResult SetAssocCache::fill(BlockAddress block, CoreId core, bool dirty) {
  BACP_DASSERT(core < config_.num_cores, "core id out of range");
  BACP_SLOW_DASSERT(!probe(block), "fill of a block that is already resident");
  const std::uint32_t set = set_index(block);
  const std::uint64_t owned = owned_ways_[core];

  // Prefer an invalid owned way (lowest way index first); otherwise the
  // LRU-most owned way (paper's modified LRU: walk recency order from the
  // LRU end, restricted to ways whose mask includes the requesting core).
  WayIndex victim = kNil;
  const std::uint64_t invalid_owned = owned & ~meta_[set].valid;
  if (invalid_owned != 0) {
    victim = static_cast<WayIndex>(std::countr_zero(invalid_owned));
  } else if (std::has_single_bit(owned)) {
    // A one-way partition (the equal-partition default) has exactly one
    // candidate — the recency walk below would only rediscover it through
    // a chain of dependent link loads.
    victim = static_cast<WayIndex>(std::countr_zero(owned));
  } else {
    const std::uint8_t* links = links_.data() + link_index(set, 0);
    for (WayIndex way = meta_[set].tail; way != kNil;
         way = links[std::size_t{way} * 2]) {
      if (((owned >> way) & 1) != 0) {
        victim = way;
        break;
      }
    }
  }
  BACP_ASSERT(victim != kNil, "fill by a core that owns no ways");

  FillResult result;
  result.way = victim;
  const std::uint64_t bit = std::uint64_t{1} << victim;
  const std::size_t index = line_index(set, victim);
  if ((meta_[set].valid & bit) != 0) {
    result.evicted = line_at(set, victim);
    ++stats_.evictions[core];
  }
  tags_[index] = block;
  allocators_[index] = core;
  meta_[set].valid |= bit;
  if (dirty) {
    meta_[set].dirty |= bit;
  } else {
    meta_[set].dirty &= ~bit;
  }
  touch_mru(set, victim);
  return result;
}

bool SetAssocCache::probe(BlockAddress block) const { return find(block).has_value(); }

void SetAssocCache::touch_hit(BlockAddress block, WayIndex way, CoreId core,
                              bool is_write) {
  BACP_DASSERT(core < config_.num_cores, "core id out of range");
  const std::uint32_t set = set_index(block);
  BACP_DASSERT(way < config_.ways && tags_[line_index(set, way)] == block &&
                   ((meta_[set].valid >> way) & 1) != 0,
               "touch_hit location out of sync with cache contents");
  ++stats_.hits[core];
  touch_mru(set, way);
  if (is_write) meta_[set].dirty |= std::uint64_t{1} << way;
}

void SetAssocCache::mark_dirty_at(BlockAddress block, WayIndex way) {
  const std::uint32_t set = set_index(block);
  BACP_DASSERT(way < config_.ways && tags_[line_index(set, way)] == block &&
                   ((meta_[set].valid >> way) & 1) != 0,
               "mark_dirty_at location out of sync with cache contents");
  meta_[set].dirty |= std::uint64_t{1} << way;
}

Line SetAssocCache::invalidate_at(BlockAddress block, WayIndex way) {
  const std::uint32_t set = set_index(block);
  BACP_DASSERT(way < config_.ways && tags_[line_index(set, way)] == block &&
                   ((meta_[set].valid >> way) & 1) != 0,
               "invalidate_at location out of sync with cache contents");
  const Line copy = line_at(set, way);
  const std::uint64_t bit = std::uint64_t{1} << way;
  meta_[set].valid &= ~bit;
  meta_[set].dirty &= ~bit;
  allocators_[line_index(set, way)] = kInvalidCore;
  // Demote the freed way to LRU so it is the next allocation target.
  detach(set, way);
  push_lru(set, way);
  return copy;
}

bool SetAssocCache::mark_dirty(BlockAddress block) {
  const auto found = find(block);
  if (!found) return false;
  meta_[set_index(block)].dirty |= std::uint64_t{1} << found->way;
  return true;
}

std::optional<Line> SetAssocCache::invalidate(BlockAddress block) {
  const auto found = find(block);
  if (!found) return std::nullopt;
  return invalidate_at(block, found->way);
}

std::optional<Line> SetAssocCache::lru_line_for_core(BlockAddress block, CoreId core) const {
  const std::uint32_t set = set_index(block);
  const std::uint8_t* links = links_.data() + link_index(set, 0);
  const std::uint64_t owned = owned_ways_[core];
  const std::uint64_t valid = meta_[set].valid;
  for (WayIndex way = meta_[set].tail; way != kNil;
       way = links[std::size_t{way} * 2]) {
    if (((owned >> way) & 1) != 0 && ((valid >> way) & 1) != 0) {
      return line_at(set, way);
    }
  }
  return std::nullopt;
}

std::optional<BlockAddress> SetAssocCache::peek_victim(BlockAddress block,
                                                       CoreId core) const {
  // Mirrors fill()'s selection: an invalid owned way means no eviction;
  // otherwise the LRU-most owned way's current occupant is the victim.
  const std::uint32_t set = set_index(block);
  const std::uint64_t owned = owned_ways_[core];
  if (owned == 0 || (owned & ~meta_[set].valid) != 0) return std::nullopt;
  if (std::has_single_bit(owned)) {
    return tags_[line_index(set, static_cast<WayIndex>(std::countr_zero(owned)))];
  }
  const std::uint8_t* links = links_.data() + link_index(set, 0);
  for (WayIndex way = meta_[set].tail; way != kNil;
       way = links[std::size_t{way} * 2]) {
    if (((owned >> way) & 1) != 0) return tags_[line_index(set, way)];
  }
  return std::nullopt;
}

void SetAssocCache::set_way_partition(const std::vector<CoreMask>& masks) {
  BACP_ASSERT(masks.size() == config_.ways, "one mask per way required");
  for (CoreMask mask : masks) {
    BACP_ASSERT(mask != 0, "every way must belong to at least one core");
  }
  way_masks_ = masks;
  rebuild_owned_ways();
}

void SetAssocCache::rebuild_owned_ways() {
  owned_ways_.assign(config_.num_cores, 0);
  for (CoreId core = 0; core < config_.num_cores; ++core) {
    const CoreMask bit = core_bit(core);
    for (WayIndex way = 0; way < config_.ways; ++way) {
      if ((way_masks_[way] & bit) != 0) owned_ways_[core] |= std::uint64_t{1} << way;
    }
  }
}

WayCount SetAssocCache::ways_owned(CoreId core) const {
  const CoreMask bit = core_bit(core);
  WayCount owned = 0;
  for (CoreMask mask : way_masks_) {
    if ((mask & bit) != 0) ++owned;
  }
  return owned;
}

std::vector<Line> SetAssocCache::resident_lines() const {
  std::vector<Line> lines;
  for (std::uint32_t set = 0; set < config_.num_sets; ++set) {
    for (WayIndex way = 0; way < config_.ways; ++way) {
      if (((meta_[set].valid >> way) & 1) != 0) lines.push_back(line_at(set, way));
    }
  }
  return lines;
}

void SetAssocCache::save_state(snapshot::Writer& writer) const {
  // Geometry echo: restore_state() cross-checks these against the live
  // cache so a snapshot can never be applied to a differently-shaped one.
  writer.u32(config_.num_sets);
  writer.u32(config_.ways);
  writer.u32(config_.num_cores);
  writer.scalars(std::span<const BlockAddress>(tags_));
  writer.scalars(std::span<const CoreId>(allocators_));
  // SetMeta has padding; serialize field-by-field, never as raw bytes.
  for (const SetMeta& meta : meta_) {
    writer.u64(meta.valid);
    writer.u64(meta.dirty);
    writer.u8(meta.head);
    writer.u8(meta.tail);
  }
  writer.scalars(std::span<const std::uint8_t>(links_));
  writer.scalars(std::span<const CoreMask>(way_masks_));
  writer.scalars(std::span<const std::uint64_t>(stats_.hits));
  writer.scalars(std::span<const std::uint64_t>(stats_.misses));
  writer.scalars(std::span<const std::uint64_t>(stats_.evictions));
}

void SetAssocCache::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == config_.num_sets, "snapshot num_sets mismatch");
  BACP_ASSERT(reader.u32() == config_.ways, "snapshot ways mismatch");
  BACP_ASSERT(reader.u32() == config_.num_cores, "snapshot num_cores mismatch");
  reader.scalars_into(std::span<BlockAddress>(tags_));
  reader.scalars_into(std::span<CoreId>(allocators_));
  for (SetMeta& meta : meta_) {
    meta.valid = reader.u64();
    meta.dirty = reader.u64();
    meta.head = reader.u8();
    meta.tail = reader.u8();
  }
  reader.scalars_into(std::span<std::uint8_t>(links_));
  reader.scalars_into(std::span<CoreMask>(way_masks_));
  reader.scalars_into(std::span<std::uint64_t>(stats_.hits));
  reader.scalars_into(std::span<std::uint64_t>(stats_.misses));
  reader.scalars_into(std::span<std::uint64_t>(stats_.evictions));
  rebuild_owned_ways();
}

std::uint64_t SetAssocCache::valid_lines() const {
  std::uint64_t count = 0;
  for (const SetMeta& meta : meta_) {
    count += static_cast<std::uint64_t>(std::popcount(meta.valid));
  }
  return count;
}

}  // namespace bacp::cache
