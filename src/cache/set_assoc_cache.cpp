#include "cache/set_assoc_cache.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace bacp::cache {

std::uint64_t CacheStats::total_hits() const {
  return std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
}

std::uint64_t CacheStats::total_misses() const {
  return std::accumulate(misses.begin(), misses.end(), std::uint64_t{0});
}

double CacheStats::miss_ratio() const {
  const std::uint64_t total = total_accesses();
  return total == 0 ? 0.0 : static_cast<double>(total_misses()) / static_cast<double>(total);
}

void CacheStats::clear() {
  std::fill(hits.begin(), hits.end(), 0);
  std::fill(misses.begin(), misses.end(), 0);
  std::fill(evictions.begin(), evictions.end(), 0);
}

SetAssocCache::SetAssocCache(const Config& config)
    : config_(config), stats_(config.num_cores) {
  BACP_ASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  BACP_ASSERT(config_.ways >= 1, "cache needs at least one way");
  BACP_ASSERT(config_.num_cores >= 1, "cache needs at least one core");
  sets_.resize(config_.num_sets);
  for (auto& set : sets_) {
    set.lines.resize(config_.ways);
    set.lru_order.resize(config_.ways);
    std::iota(set.lru_order.begin(), set.lru_order.end(), 0u);
  }
  // Default: every core owns every way (unpartitioned shared cache).
  way_masks_.assign(config_.ways, ~CoreMask{0});
}

void SetAssocCache::touch_mru(std::uint32_t set, WayIndex way) {
  auto& order = sets_[set].lru_order;
  const auto it = std::find(order.begin(), order.end(), way);
  BACP_DASSERT(it != order.end(), "way missing from LRU order");
  order.erase(it);
  order.insert(order.begin(), way);
}

std::optional<LookupResult> SetAssocCache::find(BlockAddress block) const {
  const std::uint32_t set = set_index(block);
  const auto& lines = sets_[set].lines;
  for (WayIndex way = 0; way < config_.ways; ++way) {
    if (lines[way].valid && lines[way].block == block) {
      return LookupResult{true, way};
    }
  }
  return std::nullopt;
}

LookupResult SetAssocCache::access(BlockAddress block, CoreId core, bool is_write) {
  BACP_DASSERT(core < config_.num_cores, "core id out of range");
  const std::uint32_t set = set_index(block);
  if (const auto found = find(block)) {
    ++stats_.hits[core];
    touch_mru(set, found->way);
    if (is_write) sets_[set].lines[found->way].dirty = true;
    return *found;
  }
  ++stats_.misses[core];
  return LookupResult{false, 0};
}

FillResult SetAssocCache::fill(BlockAddress block, CoreId core, bool dirty) {
  BACP_DASSERT(core < config_.num_cores, "core id out of range");
  BACP_DASSERT(!probe(block), "fill of a block that is already resident");
  const std::uint32_t set = set_index(block);
  auto& lines = sets_[set].lines;
  const CoreMask bit = core_bit(core);

  // Prefer an invalid owned way; otherwise the LRU-most owned way (paper's
  // modified LRU: scan recency order from the LRU end, restricted to ways
  // whose mask includes the requesting core).
  std::optional<WayIndex> victim;
  for (WayIndex way = 0; way < config_.ways; ++way) {
    if ((way_masks_[way] & bit) != 0 && !lines[way].valid) {
      victim = way;
      break;
    }
  }
  if (!victim) {
    const auto& order = sets_[set].lru_order;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if ((way_masks_[*it] & bit) != 0) {
        victim = *it;
        break;
      }
    }
  }
  BACP_ASSERT(victim.has_value(), "fill by a core that owns no ways");

  FillResult result;
  result.way = *victim;
  Line& line = lines[*victim];
  if (line.valid) {
    result.evicted = line;
    ++stats_.evictions[core];
  }
  line.block = block;
  line.allocator = core;
  line.valid = true;
  line.dirty = dirty;
  touch_mru(set, *victim);
  return result;
}

bool SetAssocCache::probe(BlockAddress block) const { return find(block).has_value(); }

bool SetAssocCache::mark_dirty(BlockAddress block) {
  const auto found = find(block);
  if (!found) return false;
  sets_[set_index(block)].lines[found->way].dirty = true;
  return true;
}

std::optional<Line> SetAssocCache::invalidate(BlockAddress block) {
  const auto found = find(block);
  if (!found) return std::nullopt;
  const std::uint32_t set = set_index(block);
  Line& line = sets_[set].lines[found->way];
  const Line copy = line;
  line = Line{};
  // Demote the freed way to LRU so it is the next allocation target.
  auto& order = sets_[set].lru_order;
  const auto it = std::find(order.begin(), order.end(), found->way);
  order.erase(it);
  order.push_back(found->way);
  return copy;
}

std::optional<Line> SetAssocCache::lru_line_for_core(BlockAddress block, CoreId core) const {
  const std::uint32_t set = set_index(block);
  const auto& lines = sets_[set].lines;
  const auto& order = sets_[set].lru_order;
  const CoreMask bit = core_bit(core);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((way_masks_[*it] & bit) != 0 && lines[*it].valid) return lines[*it];
  }
  return std::nullopt;
}

void SetAssocCache::set_way_partition(const std::vector<CoreMask>& masks) {
  BACP_ASSERT(masks.size() == config_.ways, "one mask per way required");
  for (CoreMask mask : masks) {
    BACP_ASSERT(mask != 0, "every way must belong to at least one core");
  }
  way_masks_ = masks;
}

WayCount SetAssocCache::ways_owned(CoreId core) const {
  const CoreMask bit = core_bit(core);
  WayCount owned = 0;
  for (CoreMask mask : way_masks_) {
    if ((mask & bit) != 0) ++owned;
  }
  return owned;
}

std::vector<Line> SetAssocCache::resident_lines() const {
  std::vector<Line> lines;
  for (const auto& set : sets_) {
    for (const auto& line : set.lines) {
      if (line.valid) lines.push_back(line);
    }
  }
  return lines;
}

std::uint64_t SetAssocCache::valid_lines() const {
  std::uint64_t count = 0;
  for (const auto& set : sets_) {
    for (const auto& line : set.lines) {
      if (line.valid) ++count;
    }
  }
  return count;
}

}  // namespace bacp::cache
