#include "obs/metrics.hpp"

#include <ostream>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::obs {

void Distribution::observe(double value) {
  stats_.add(value);
  std::size_t bin = 0;
  if (value >= 1.0) {
    bin = log2_floor(static_cast<std::uint64_t>(value));
    if (bin >= kNumBins) bin = kNumBins - 1;
  }
  histogram_.increment(bin);
}

void Distribution::merge(const Distribution& other) {
  stats_.merge(other.stats_);
  histogram_.accumulate(other.histogram_);
}

void Registry::assert_unclaimed(std::string_view name, const void* owner) const {
  const auto counter = counters_.find(name);
  const auto gauge = gauges_.find(name);
  const auto distribution = distributions_.find(name);
  const void* holder = counter != counters_.end()   ? static_cast<const void*>(&counter->second)
                       : gauge != gauges_.end()     ? static_cast<const void*>(&gauge->second)
                       : distribution != distributions_.end()
                           ? static_cast<const void*>(&distribution->second)
                           : nullptr;
  BACP_ASSERT(holder == nullptr || holder == owner,
              "metric name registered under a different kind");
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    assert_unclaimed(name, nullptr);
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    assert_unclaimed(name, nullptr);
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Distribution& Registry::distribution(std::string_view name) {
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    assert_unclaimed(name, nullptr);
    it = distributions_.emplace(std::string(name), Distribution{}).first;
  }
  return it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Distribution* Registry::find_distribution(std::string_view name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::counter_value(std::string_view name, std::uint64_t fallback) const {
  const Counter* counter = find_counter(name);
  return counter == nullptr ? fallback : counter->value();
}

double Registry::gauge_value(std::string_view name, double fallback) const {
  const Gauge* gauge = find_gauge(name);
  return gauge == nullptr ? fallback : gauge->value();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, counter] : other.counters_) {
    this->counter(name).add(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    this->gauge(name).set(gauge.value());
  }
  for (const auto& [name, distribution] : other.distributions_) {
    this->distribution(name).merge(distribution);
  }
}

Json Registry::to_json() const {
  Json counters = Json::object();
  for (const auto& [name, counter] : counters_) counters.set(name, counter.value());

  Json gauges = Json::object();
  for (const auto& [name, gauge] : gauges_) gauges.set(name, gauge.value());

  Json distributions = Json::object();
  for (const auto& [name, distribution] : distributions_) {
    Json bins = Json::array();
    const auto& histogram = distribution.histogram();
    for (std::size_t bin = 0; bin < histogram.num_bins(); ++bin) {
      if (histogram.bin(bin) == 0) continue;
      bins.push_back(Json::object()
                         .set("log2", static_cast<std::uint64_t>(bin))
                         .set("count", histogram.bin(bin)));
    }
    distributions.set(name, Json::object()
                                .set("count", distribution.count())
                                .set("mean", distribution.mean())
                                .set("stddev", distribution.stddev())
                                .set("min", distribution.min())
                                .set("max", distribution.max())
                                .set("bins", std::move(bins)));
  }

  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("distributions", std::move(distributions));
}

void Registry::write_csv(std::ostream& os) const {
  os << "kind,name,count,mean,stddev,min,max\n";
  for (const auto& [name, counter] : counters_) {
    os << "counter," << name << ',' << counter.value() << ",,,,\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge," << name << ",," << Json(gauge.value()).dump() << ",,,\n";
  }
  for (const auto& [name, distribution] : distributions_) {
    os << "distribution," << name << ',' << distribution.count() << ','
       << Json(distribution.mean()).dump() << ',' << Json(distribution.stddev()).dump()
       << ',' << Json(distribution.min()).dump() << ','
       << Json(distribution.max()).dump() << '\n';
  }
}

}  // namespace bacp::obs
