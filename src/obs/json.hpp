#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bacp::obs {

/// Resource limits applied while parsing untrusted JSON text. The defaults
/// are far beyond anything the sinks emit but small enough that a corrupt
/// or adversarial document fails fast with a positioned error instead of
/// exhausting the parser's recursion stack or memory.
struct JsonLimits {
  std::size_t max_depth = 64;                    ///< nesting of arrays/objects
  std::size_t max_input_bytes = 1ull << 30;      ///< 1 GiB of text
};

/// Minimal JSON value model for the observability sinks. Two properties the
/// standard alternatives do not give us for free:
///   - deterministic serialization: object members keep insertion order and
///     doubles are printed with std::to_chars (shortest round-trip form), so
///     identical results serialize to byte-identical text regardless of how
///     many threads produced them;
///   - integer fidelity: 64-bit counters are kept as integers, not doubles.
/// The parser exists so tests (and downstream tooling) can round-trip sink
/// output without external dependencies.
class Json {
 public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool value) : kind_(Kind::Bool), bool_(value) {}
  Json(std::int64_t value) : kind_(Kind::Int), int_(value) {}
  Json(std::uint64_t value) : kind_(Kind::Uint), uint_(value) {}
  Json(int value) : kind_(Kind::Int), int_(value) {}
  Json(double value) : kind_(Kind::Double), double_(value) {}
  Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
  Json(const char* value) : kind_(Kind::String), string_(value) {}

  static Json object();
  static Json array();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Uint || kind_ == Kind::Double;
  }

  /// Object: sets `key` to `value`, replacing an existing member in place
  /// (insertion order is preserved). Returns *this for chaining.
  Json& set(std::string_view key, Json value);
  /// Object: member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Object: member access; asserts presence.
  const Json& at(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Array: appends an element.
  Json& push_back(Json value);
  const Json& at(std::size_t index) const;
  std::size_t size() const;

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;  ///< any numeric kind
  const std::string& as_string() const;

  /// Compact deterministic serialization (no whitespace). `indent` > 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Strict-ish recursive-descent parser. On failure returns a null value
  /// and, when `error` is non-null, stores a description with the byte
  /// offset of the problem. Inputs exceeding `limits` (nesting depth,
  /// total size) are rejected the same way — never a crash or an
  /// unbounded allocation.
  static Json parse(std::string_view text, std::string* error = nullptr,
                    const JsonLimits& limits = {});

  bool operator==(const Json& other) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace bacp::obs
