#include "obs/phase_timer.hpp"

#include <sstream>

namespace bacp::obs {

void PhaseTimers::add(std::string_view name, double seconds) {
  const common::MutexLock lock(mutex_);
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(name), Phase{std::string(name), 0.0, 0}).first;
  }
  it->second.seconds += seconds;
  ++it->second.calls;
}

std::vector<PhaseTimers::Phase> PhaseTimers::phases() const {
  const common::MutexLock lock(mutex_);
  std::vector<Phase> out;
  out.reserve(phases_.size());
  for (const auto& [name, phase] : phases_) out.push_back(phase);
  return out;
}

double PhaseTimers::seconds(std::string_view name) const {
  const common::MutexLock lock(mutex_);
  const auto it = phases_.find(name);
  return it == phases_.end() ? 0.0 : it->second.seconds;
}

void PhaseTimers::clear() {
  const common::MutexLock lock(mutex_);
  phases_.clear();
}

std::string PhaseTimers::summary() const {
  const auto snapshot = phases();
  if (snapshot.empty()) return "";
  std::ostringstream oss;
  oss << "phase timings:";
  for (const auto& phase : snapshot) {
    oss << ' ' << phase.name << ' ';
    oss.precision(3);
    oss << std::fixed << phase.seconds << "s";
    if (phase.calls > 1) oss << " (" << phase.calls << " calls)";
    oss << ';';
  }
  std::string text = oss.str();
  text.pop_back();  // trailing ';'
  return text;
}

PhaseTimers& global_phase_timers() {
  static PhaseTimers timers;
  return timers;
}

}  // namespace bacp::obs
