#include "obs/report.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "obs/phase_timer.hpp"

namespace bacp::obs {

ReportTable::ReportTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

ReportTable& ReportTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

ReportTable& ReportTable::push(Cell cell) {
  BACP_ASSERT(!rows_.empty(), "cell before begin_row");
  BACP_ASSERT(rows_.back().size() < columns_.size(), "more cells than columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

ReportTable& ReportTable::cell(std::string value) {
  std::string text = value;
  return push(Cell{Json(std::move(value)), std::move(text)});
}

ReportTable& ReportTable::cell(double value, int precision) {
  return push(Cell{Json(value), common::Table::format_double(value, precision)});
}

ReportTable& ReportTable::cell(std::uint64_t value) {
  return push(Cell{Json(value), std::to_string(value)});
}

ReportTable& ReportTable::cell(int value) {
  return push(Cell{Json(value), std::to_string(value)});
}

common::Table ReportTable::render() const {
  common::Table table(columns_);
  for (const auto& row : rows_) {
    table.begin_row();
    for (const auto& c : row) table.add_cell(c.text);
  }
  return table;
}

Json ReportTable::to_json() const {
  Json columns = Json::array();
  for (const auto& column : columns_) columns.push_back(column);
  Json rows = Json::array();
  for (const auto& row : rows_) {
    Json out_row = Json::array();
    for (const auto& c : row) out_row.push_back(c.value);
    rows.push_back(std::move(out_row));
  }
  return Json::object().set("columns", std::move(columns)).set("rows", std::move(rows));
}

ReportOptions ReportOptions::from_args(const common::ArgParser& parser) {
  ReportOptions options;
  options.json_out = parser.get("json-out", "");
  options.csv_out = parser.get("csv-out", "");
  return options;
}

ReportOptions ReportOptions::extract_from_argv(int& argc, char** argv) {
  ReportOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      options.json_out = arg.substr(std::string("--json-out=").size());
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      options.csv_out = arg.substr(std::string("--csv-out=").size());
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return options;
}

Report::Report(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title)) {}

Report& Report::meta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Report& Report::metric(std::string name, double value, int precision) {
  std::string text = common::Table::format_double(value, precision);
  metrics_.push_back(Metric{std::move(name), Json(value), std::move(text)});
  return *this;
}

Report& Report::metric(std::string name, std::uint64_t value) {
  std::string text = std::to_string(value);
  metrics_.push_back(Metric{std::move(name), Json(value), std::move(text)});
  return *this;
}

Report& Report::metric(std::string name, std::string value) {
  std::string text = value;
  metrics_.push_back(Metric{std::move(name), Json(std::move(value)), std::move(text)});
  return *this;
}

Report& Report::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

Report& Report::attach(std::string key, Json value) {
  attachments_.emplace_back(std::move(key), std::move(value));
  return *this;
}

ReportTable& Report::table(std::string name, std::vector<std::string> columns) {
  tables_.emplace_back(std::move(name), std::move(columns));
  return tables_.back();
}

double Report::metric_value(std::string_view name, double fallback) const {
  for (const auto& metric : metrics_) {
    if (metric.name == name) {
      return metric.value.is_number() ? metric.value.as_double() : fallback;
    }
  }
  return fallback;
}

void Report::print(std::ostream& os) const {
  os << "=== " << title_ << " ===\n";
  for (const auto& [key, value] : meta_) os << key << ": " << value << '\n';
  for (const auto& t : tables_) {
    if (tables_.size() > 1) os << "\n[" << t.name() << "]\n";
    t.render().print(os);
  }
  if (!metrics_.empty()) {
    os << '\n';
    for (const auto& metric : metrics_) {
      os << metric.name << " = " << metric.text << '\n';
    }
  }
  for (const auto& n : notes_) os << '\n' << n << '\n';
}

Json Report::to_json() const {
  Json meta = Json::object();
  for (const auto& [key, value] : meta_) meta.set(key, value);

  Json metrics = Json::object();
  for (const auto& metric : metrics_) metrics.set(metric.name, metric.value);

  Json tables = Json::object();
  for (const auto& t : tables_) tables.set(t.name(), t.to_json());

  Json notes = Json::array();
  for (const auto& n : notes_) notes.push_back(n);

  Json out = Json::object()
                 .set("schema", std::uint64_t{1})
                 .set("report", name_)
                 .set("title", title_)
                 .set("meta", std::move(meta))
                 .set("metrics", std::move(metrics))
                 .set("tables", std::move(tables))
                 .set("notes", std::move(notes));
  for (const auto& [key, value] : attachments_) out.set(key, value);
  return out;
}

std::string Report::to_csv() const {
  std::ostringstream oss;
  oss << "# report," << name_ << '\n';
  for (const auto& [key, value] : meta_) oss << "# meta," << key << ',' << value << '\n';
  if (!metrics_.empty()) {
    oss << "# metrics\n";
    common::Table table({"metric", "value"});
    for (const auto& metric : metrics_) {
      table.begin_row().add_cell(metric.name).add_cell(metric.text);
    }
    table.print_csv(oss);
  }
  for (const auto& t : tables_) {
    oss << "# table," << t.name() << '\n';
    t.render().print_csv(oss);
  }
  return oss.str();
}

namespace {

bool write_file(const std::string& path, const std::string& contents,
                const char* what) {
  const std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);  // best effort
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot open " << what << " file '" << path << "'\n";
    return false;
  }
  out << contents;
  out.close();
  if (!out) {
    std::cerr << "error: failed writing " << what << " file '" << path << "'\n";
    return false;
  }
  return true;
}

}  // namespace

namespace {

/// Provenance metadata injected by the environment (scripts/run_benches.sh
/// sets BACP_BENCH_META="preset=release-lto,git_sha=<sha>"): appended to the
/// JSON artifact's "meta" object only, so the in-process Report stays
/// deterministic and the console output stays clean.
std::vector<std::pair<std::string, std::string>> env_meta() {
  std::vector<std::pair<std::string, std::string>> out;
  // Environment reads go through common::env (the sanctioned site for the
  // bacp-det-wallclock determinism check), never raw std::getenv.
  const std::string raw = common::env_string("BACP_BENCH_META", "");
  if (raw.empty()) return out;
  std::string_view rest(raw);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // malformed: skip
    out.emplace_back(std::string(item.substr(0, eq)), std::string(item.substr(eq + 1)));
  }
  return out;
}

}  // namespace

bool Report::emit(std::ostream& console, const ReportOptions& options) const {
  print(console);
  const std::string timings = global_phase_timers().summary();
  if (!timings.empty()) console << '\n' << timings << '\n';
  bool ok = true;
  if (!options.json_out.empty()) {
    Json json = to_json();
    if (const auto extra = env_meta(); !extra.empty()) {
      Json meta = *json.find("meta");
      for (const auto& [key, value] : extra) meta.set(key, value);
      json.set("meta", std::move(meta));
    }
    ok = write_file(options.json_out, json.dump(2) + "\n", "JSON") && ok;
  }
  if (!options.csv_out.empty()) {
    ok = write_file(options.csv_out, to_csv(), "CSV") && ok;
  }
  return ok;
}

std::vector<std::pair<std::string, std::string>> with_report_flags(
    std::vector<std::pair<std::string, std::string>> spec) {
  spec.emplace_back("json-out=", "write the report as deterministic JSON to <path>");
  spec.emplace_back("csv-out=", "write the report as CSV to <path>");
  spec.emplace_back("help", "show this help");
  return spec;
}

std::optional<int> handle_cli(common::ArgParser& parser, int argc,
                              const char* const* argv) {
  const std::string program = argc > 0 ? argv[0] : "program";
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << "\n\n" << parser.help(program);
    return 2;
  }
  if (parser.has("help")) {
    std::cout << parser.help(program);
    return 0;
  }
  return std::nullopt;
}

}  // namespace bacp::obs
