#include "obs/timeseries.hpp"

#include <ostream>

#include "common/assert.hpp"

namespace bacp::obs {

void TimeSeries::begin_epoch() { ++epochs_; }

void TimeSeries::record(std::string_view series, double value) {
  BACP_ASSERT(epochs_ > 0, "TimeSeries::record before begin_epoch");
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(std::string(series), std::vector<double>()).first;
  }
  auto& samples = it->second;
  BACP_ASSERT(samples.size() < epochs_, "series recorded twice in one epoch");
  samples.resize(epochs_ - 1, 0.0);  // back-fill epochs before first record
  samples.push_back(value);
}

std::span<const double> TimeSeries::series(std::string_view name) const {
  const auto it = series_.find(name);
  BACP_ASSERT(it != series_.end(), "unknown time series");
  return it->second;
}

std::vector<std::string> TimeSeries::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, samples] : series_) out.push_back(name);
  return out;
}

void TimeSeries::clear() {
  series_.clear();
  epochs_ = 0;
}

Json TimeSeries::to_json() const {
  Json series = Json::object();
  for (const auto& [name, samples] : series_) {
    Json values = Json::array();
    for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
      values.push_back(epoch < samples.size() ? samples[epoch] : 0.0);
    }
    series.set(name, std::move(values));
  }
  return Json::object()
      .set("epochs", static_cast<std::uint64_t>(epochs_))
      .set("series", std::move(series));
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "epoch";
  for (const auto& [name, samples] : series_) os << ',' << name;
  os << '\n';
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    os << epoch;
    for (const auto& [name, samples] : series_) {
      os << ',' << Json(epoch < samples.size() ? samples[epoch] : 0.0).dump();
    }
    os << '\n';
  }
}

}  // namespace bacp::obs
