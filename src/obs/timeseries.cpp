#include "obs/timeseries.hpp"

#include <ostream>

#include "common/assert.hpp"

namespace bacp::obs {

void TimeSeries::begin_epoch() { ++epochs_; }

TimeSeries::SeriesHandle TimeSeries::intern(std::string_view series) {
  const auto it = index_.find(series);
  if (it != index_.end()) return it->second;
  const SeriesHandle handle = columns_.size();
  columns_.emplace_back();
  index_.emplace(std::string(series), handle);
  return handle;
}

void TimeSeries::record(SeriesHandle series, double value) {
  BACP_ASSERT(epochs_ > 0, "TimeSeries::record before begin_epoch");
  BACP_ASSERT(series < columns_.size(), "record with a foreign series handle");
  auto& samples = columns_[series];
  BACP_ASSERT(samples.size() < epochs_, "series recorded twice in one epoch");
  samples.resize(epochs_ - 1, 0.0);  // back-fill epochs before first record
  samples.push_back(value);
}

void TimeSeries::record(std::string_view series, double value) {
  record(intern(series), value);
}

bool TimeSeries::has_series(std::string_view name) const {
  const auto it = index_.find(name);
  return it != index_.end() && !columns_[it->second].empty();
}

std::span<const double> TimeSeries::series(std::string_view name) const {
  const auto it = index_.find(name);
  BACP_ASSERT(it != index_.end() && !columns_[it->second].empty(),
              "unknown time series");
  return columns_[it->second];
}

std::vector<std::string> TimeSeries::names() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [name, handle] : index_) {
    if (!columns_[handle].empty()) out.push_back(name);
  }
  return out;
}

void TimeSeries::clear() {
  index_.clear();
  columns_.clear();
  epochs_ = 0;
}

Json TimeSeries::to_json() const {
  Json series = Json::object();
  for (const auto& [name, handle] : index_) {
    const auto& samples = columns_[handle];
    if (samples.empty()) continue;
    Json values = Json::array();
    for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
      values.push_back(epoch < samples.size() ? samples[epoch] : 0.0);
    }
    series.set(name, std::move(values));
  }
  return Json::object()
      .set("epochs", static_cast<std::uint64_t>(epochs_))
      .set("series", std::move(series));
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "epoch";
  for (const auto& [name, handle] : index_) {
    if (!columns_[handle].empty()) os << ',' << name;
  }
  os << '\n';
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    os << epoch;
    for (const auto& [name, handle] : index_) {
      const auto& samples = columns_[handle];
      if (samples.empty()) continue;
      os << ',' << Json(epoch < samples.size() ? samples[epoch] : 0.0).dump();
    }
    os << '\n';
  }
}

}  // namespace bacp::obs
