#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::obs {

/// Column-oriented per-epoch recorder. sim::System pushes one row per
/// epoch boundary (allocations per core, promotion/demotion deltas, NoC
/// queue cycles, DRAM traffic, per-core CPI); every named series therefore
/// has exactly `num_epochs()` samples. A series first recorded at a later
/// epoch is back-filled with zeros so columns stay rectangular.
///
/// Recorders on a hot loop intern their series names once and record by
/// handle — record(handle, v) is an index into a column vector, with no
/// string building or map lookup per epoch. The string overload remains
/// for one-off callers and interns on first use. Interned-but-never-
/// recorded series do not exist as far as the outputs are concerned:
/// names(), to_json() and write_csv() skip empty columns, so interning
/// ahead of time never changes the emitted artifacts.
class TimeSeries {
 public:
  /// Stable index of an interned series. Invalidated by clear().
  using SeriesHandle = std::size_t;

  /// Opens the next row. All record() calls until the next begin_epoch()
  /// land in this row; at most one sample per series per row.
  void begin_epoch();

  /// Returns the handle for `series`, creating an (empty, unreported)
  /// column on first sight. Idempotent per name.
  SeriesHandle intern(std::string_view series);

  void record(SeriesHandle series, double value);
  void record(std::string_view series, double value);

  std::size_t num_epochs() const { return epochs_; }
  bool has_series(std::string_view name) const;
  /// Samples of one series, one per epoch. Asserts the series exists and
  /// has been recorded at least once.
  std::span<const double> series(std::string_view name) const;
  /// Name-sorted list of recorded series.
  std::vector<std::string> names() const;

  void clear();

  /// {"epochs": N, "series": {name: [v0, v1, ...]}} with sorted names.
  Json to_json() const;

  /// Wide CSV: header `epoch,<name>,...`, one row per epoch.
  void write_csv(std::ostream& os) const;

 private:
  friend class audit::ComponentAuditor;
  friend struct SeriesTestPeer;  ///< mutation hooks for the audit kill-tests

  // Sorted name -> column index; columns_ holds the samples. The map is
  // touched only on intern and reporting, never on the record fast path.
  std::map<std::string, SeriesHandle, std::less<>> index_;
  std::vector<std::vector<double>> columns_;
  std::size_t epochs_ = 0;
};

}  // namespace bacp::obs
