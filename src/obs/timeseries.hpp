#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace bacp::obs {

/// Column-oriented per-epoch recorder. sim::System pushes one row per
/// epoch boundary (allocations per core, promotion/demotion deltas, NoC
/// queue cycles, DRAM traffic, per-core CPI); every named series therefore
/// has exactly `num_epochs()` samples. A series first recorded at a later
/// epoch is back-filled with zeros so columns stay rectangular.
class TimeSeries {
 public:
  /// Opens the next row. All record() calls until the next begin_epoch()
  /// land in this row; at most one sample per series per row.
  void begin_epoch();

  void record(std::string_view series, double value);

  std::size_t num_epochs() const { return epochs_; }
  bool has_series(std::string_view name) const { return series_.find(name) != series_.end(); }
  /// Samples of one series, one per epoch. Asserts the series exists.
  std::span<const double> series(std::string_view name) const;
  /// Name-sorted list of recorded series.
  std::vector<std::string> names() const;

  void clear();

  /// {"epochs": N, "series": {name: [v0, v1, ...]}} with sorted names.
  Json to_json() const;

  /// Wide CSV: header `epoch,<name>,...`, one row per epoch.
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, std::vector<double>, std::less<>> series_;
  std::size_t epochs_ = 0;
};

}  // namespace bacp::obs
