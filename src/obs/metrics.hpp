#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace bacp::obs {

/// Monotonically accumulated 64-bit event count (L2 misses, promotions,
/// DRAM reads). `set` exists for result snapshots that copy a count frozen
/// elsewhere (e.g. the per-quota core snapshots).
class Counter {
 public:
  void add(std::uint64_t amount = 1) { value_ += amount; }
  void set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (miss ratio, mean CPI, allocated ways).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming summary plus a log2-bucketed histogram of observed samples
/// (queue depths, per-bank request counts, trial ratios). Mergeable across
/// shards the same way StreamingStats is; merge order must be fixed by the
/// caller when bit-exact output matters.
class Distribution {
 public:
  static constexpr std::size_t kNumBins = 64;

  Distribution() : histogram_(kNumBins) {}

  void observe(double value);
  void merge(const Distribution& other);

  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  const common::StreamingStats& stats() const { return stats_; }
  /// Bin i holds samples with floor(log2(max(value, 1))) == i (negative
  /// samples land in bin 0).
  const common::Histogram& histogram() const { return histogram_; }

 private:
  common::StreamingStats stats_;
  common::Histogram histogram_;
};

/// Named metric store: the backing of sim::SystemResults and of every
/// JSON/CSV artifact the harness emits. Names are hierarchical by
/// convention ("nuca.promotions", "dram.demand_reads"). Lookup creates on
/// first use; iteration is name-ordered, so serialization is deterministic.
///
/// A kind owns its name: registering "x" as a counter and again as a gauge
/// is a programming error (asserted), not a silent shadow.
///
/// Thread model: thread-COMPATIBLE, not thread-safe — a Registry is owned
/// by exactly one simulation/trial at a time (sweeps give every variant its
/// own System and thus its own registries), so it carries no lock and no
/// BACP_GUARDED_BY annotations on purpose; cross-thread aggregation goes
/// through merge() on the owning thread after the pool joins. The
/// mutex-guarded observability class is PhaseTimers (common/mutex.hpp
/// capabilities, checked by clang -Wthread-safety).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Distribution& distribution(std::string_view name);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Distribution* find_distribution(std::string_view name) const;

  /// Value lookups for typed accessors; absent names read as the fallback.
  std::uint64_t counter_value(std::string_view name, std::uint64_t fallback = 0) const;
  double gauge_value(std::string_view name, double fallback = 0.0) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + distributions_.size();
  }
  bool empty() const { return size() == 0; }
  void clear();

  /// Cross-shard aggregation: counters add, distributions merge, gauges
  /// take the other side's value (last writer wins).
  void merge(const Registry& other);

  /// {"counters": {...}, "gauges": {...}, "distributions": {...}} with
  /// name-sorted members; distributions carry count/mean/stddev/min/max
  /// and the non-empty histogram bins.
  Json to_json() const;

  /// One `kind,name,value` row per counter/gauge plus summary rows per
  /// distribution; the CSV mirror of to_json().
  void write_csv(std::ostream& os) const;

 private:
  void assert_unclaimed(std::string_view name, const void* owner) const;

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Distribution, std::less<>> distributions_;
};

}  // namespace bacp::obs
