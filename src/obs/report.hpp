#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/args.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace bacp::obs {

/// One table of a Report, declared once with typed cells and rendered to
/// every output format: aligned console text, CSV, and JSON with native
/// numbers. Replaces the per-binary common::Table plumbing the bench
/// drivers used to duplicate.
class ReportTable {
 public:
  ReportTable(std::string name, std::vector<std::string> columns);

  ReportTable& begin_row();
  ReportTable& cell(std::string value);
  ReportTable& cell(const char* value) { return cell(std::string(value)); }
  ReportTable& cell(double value, int precision = 3);
  ReportTable& cell(std::uint64_t value);
  ReportTable& cell(int value);

  const std::string& name() const { return name_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Console rendering (formatted strings, aligned columns).
  common::Table render() const;
  /// {"columns": [...], "rows": [[...]]} with native cell types.
  Json to_json() const;

 private:
  struct Cell {
    Json value;
    std::string text;  ///< formatted form for console/CSV
  };
  ReportTable& push(Cell cell);

  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Where a Report goes besides the console. Parsed from the standard
/// `--json-out=<path>` / `--csv-out=<path>` flags every bench and example
/// binary accepts (see with_report_flags).
struct ReportOptions {
  std::string json_out;
  std::string csv_out;

  static ReportOptions from_args(const common::ArgParser& parser);

  /// For binaries whose argv is owned by another framework (the
  /// google-benchmark driver): strips `--json-out=<path>` / `--csv-out=<path>`
  /// out of argv before the framework sees them.
  static ReportOptions extract_from_argv(int& argc, char** argv);
};

/// A bench/example result artifact: named tables, headline metrics, meta
/// and free-form notes, declared once and emitted as a console report, a
/// schema-stable deterministic JSON document, and CSV. The JSON is what
/// scripts/run_benches.sh captures into bench/out/ for the perf trajectory.
class Report {
 public:
  Report(std::string name, std::string title);

  Report& meta(std::string key, std::string value);
  Report& metric(std::string name, double value, int precision = 3);
  Report& metric(std::string name, std::uint64_t value);
  Report& metric(std::string name, std::string value);
  Report& note(std::string text);
  /// Embeds a raw JSON section at the top level (e.g. a full
  /// SystemResults::to_json() or a TimeSeries).
  Report& attach(std::string key, Json value);

  ReportTable& table(std::string name, std::vector<std::string> columns);

  double metric_value(std::string_view name, double fallback = 0.0) const;

  void print(std::ostream& os) const;
  Json to_json() const;
  std::string to_csv() const;

  /// Prints to `console` and honors options.json_out / options.csv_out
  /// (parent directories are created). Returns false if a file write
  /// failed (after reporting it to stderr). Provenance pairs from
  /// BACP_BENCH_META ("key=value,key=value", set by scripts/run_benches.sh
  /// with the build preset and git SHA) are appended to the JSON artifact's
  /// "meta" object; to_json() itself stays environment-independent.
  bool emit(std::ostream& console, const ReportOptions& options) const;

 private:
  struct Metric {
    std::string name;
    Json value;
    std::string text;
  };

  std::string name_;
  std::string title_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Metric> metrics_;
  std::deque<ReportTable> tables_;  // deque: table() references stay valid
  std::vector<std::string> notes_;
  std::vector<std::pair<std::string, Json>> attachments_;
};

/// Appends the standard report flags (--json-out, --csv-out, --help) to a
/// binary's flag spec.
std::vector<std::pair<std::string, std::string>> with_report_flags(
    std::vector<std::pair<std::string, std::string>> spec);

/// Standard CLI prologue: parses argv, prints help or a parse error as
/// appropriate. Returns the exit code to return from main, or nullopt to
/// continue running.
std::optional<int> handle_cli(common::ArgParser& parser, int argc,
                              const char* const* argv);

}  // namespace bacp::obs
