#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace bacp::obs {

/// Wall-clock accounting of coarse harness phases (profile / allocate /
/// simulate, per-policy runs, Monte-Carlo sweeps). Scopes are RAII; the
/// accumulator is mutex-guarded so parallel trials may time themselves.
///
/// Wall time is inherently non-deterministic, so these readings are for
/// console diagnostics only — they are deliberately kept out of the
/// deterministic JSON artifacts.
class PhaseTimers {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };

  class Scope {
   public:
    Scope(PhaseTimers& timers, std::string name)
        // NOLINTNEXTLINE(bacp-det-wallclock): phase timing measures real elapsed host time by design; never feeds simulated state
        : timers_(&timers), name_(std::move(name)), start_(Clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      // NOLINTNEXTLINE(bacp-det-wallclock): host-time observability, as above
      timers_->add(name_, std::chrono::duration<double>(Clock::now() - start_).count());
    }

   private:
    using Clock = std::chrono::steady_clock;
    PhaseTimers* timers_;
    std::string name_;
    Clock::time_point start_;
  };

  /// Starts timing `name`; the elapsed wall time is added when the returned
  /// scope is destroyed.
  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(std::string_view name, double seconds) BACP_EXCLUDES(mutex_);

  /// Name-sorted snapshot of all phases.
  std::vector<Phase> phases() const BACP_EXCLUDES(mutex_);
  double seconds(std::string_view name) const BACP_EXCLUDES(mutex_);
  void clear() BACP_EXCLUDES(mutex_);

  /// "phase timings: name 1.23s (4 calls), ..." or "" when empty.
  std::string summary() const BACP_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, Phase, std::less<>> phases_ BACP_GUARDED_BY(mutex_);
};

/// Process-wide timer set the harness records into; benches print its
/// summary() after their tables.
PhaseTimers& global_phase_timers();

}  // namespace bacp::obs
