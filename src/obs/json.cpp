#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace bacp::obs {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json& Json::set(std::string_view key, Json value) {
  BACP_ASSERT(kind_ == Kind::Object, "Json::set on a non-object");
  for (auto& [name, member] : object_) {
    if (name == key) {
      member = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, member] : object_) {
    if (name == key) return &member;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* member = find(key);
  BACP_ASSERT(member != nullptr, "Json object member missing");
  return *member;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  BACP_ASSERT(kind_ == Kind::Object, "Json::members on a non-object");
  return object_;
}

Json& Json::push_back(Json value) {
  BACP_ASSERT(kind_ == Kind::Array, "Json::push_back on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

const Json& Json::at(std::size_t index) const {
  BACP_ASSERT(kind_ == Kind::Array, "Json::at(index) on a non-array");
  return array_.at(index);
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

bool Json::as_bool() const {
  BACP_ASSERT(kind_ == Kind::Bool, "Json value is not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::Uint) return static_cast<std::int64_t>(uint_);
  BACP_ASSERT(kind_ == Kind::Int, "Json value is not an integer");
  return int_;
}

std::uint64_t Json::as_uint() const {
  if (kind_ == Kind::Int) {
    BACP_ASSERT(int_ >= 0, "Json integer is negative");
    return static_cast<std::uint64_t>(int_);
  }
  BACP_ASSERT(kind_ == Kind::Uint, "Json value is not an unsigned integer");
  return uint_;
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::Int:
      return static_cast<double>(int_);
    case Kind::Uint:
      return static_cast<double>(uint_);
    case Kind::Double:
      return double_;
    default:
      BACP_ASSERT(false, "Json value is not numeric");
      return 0.0;
  }
}

const std::string& Json::as_string() const {
  BACP_ASSERT(kind_ == Kind::String, "Json value is not a string");
  return string_;
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    // Cross-kind numeric equality so parse(dump(x)) == x even when an
    // integral double re-parses as an integer.
    return as_double() == other.as_double();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null:
      return true;
    case Kind::Bool:
      return bool_ == other.bool_;
    case Kind::String:
      return string_ == other.string_;
    case Kind::Array:
      return array_ == other.array_;
    case Kind::Object:
      return object_ == other.object_;
    default:
      return false;  // numeric kinds handled above
  }
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no Inf/NaN; sinks must stay parseable
    return;
  }
  char buf[32];
  // Shortest round-trip representation: deterministic and bit-exact on
  // re-parse, which the byte-identical-output guarantee depends on.
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, result.ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      out += std::to_string(int_);
      break;
    case Kind::Uint:
      out += std::to_string(uint_);
      break;
    case Kind::Double:
      write_double(out, double_);
      break;
    case Kind::String:
      write_escaped(out, string_);
      break;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& element : array_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        element.write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [name, member] : object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        write_escaped(out, name);
        out += ':';
        if (indent > 0) out += ' ';
        member.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error, const JsonLimits& limits)
      : text_(text), error_(error), limits_(limits) {}

  Json run() {
    if (text_.size() > limits_.max_input_bytes) {
      fail("input of " + std::to_string(text_.size()) +
           " bytes exceeds the size limit of " +
           std::to_string(limits_.max_input_bytes));
      return Json();
    }
    Json value = parse_value();
    skip_ws();
    if (!failed_ && pos_ != text_.size()) fail("trailing characters");
    return failed_ ? Json() : value;
  }

  bool failed() const { return failed_; }

 private:
  void fail(const std::string& message) {
    if (!failed_ && error_) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return Json();
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        return parse_literal("true", Json(true));
      case 'f':
        return parse_literal("false", Json(false));
      case 'n':
        return parse_literal("null", Json());
      default:
        return parse_number();
    }
  }

  Json parse_literal(std::string_view literal, Json value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
      return Json();
    }
    pos_ += literal.size();
    return value;
  }

  /// Containers recurse through parse_value; the depth limit bounds that
  /// recursion so `[[[[...` fails with a positioned error instead of
  /// overflowing the stack.
  bool enter_container() {
    if (depth_ >= limits_.max_depth) {
      fail("nesting depth exceeds the limit of " + std::to_string(limits_.max_depth));
      return false;
    }
    ++depth_;
    return true;
  }

  Json parse_object() {
    expect('{');
    if (!enter_container()) return Json();
    Json object = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return object;
    }
    while (!failed_) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        break;
      }
      std::string key = parse_string();
      skip_ws();
      if (!expect(':')) break;
      object.set(key, parse_value());
      skip_ws();
      if (consume('}')) break;
      if (!expect(',')) break;
    }
    --depth_;
    return object;
  }

  Json parse_array() {
    expect('[');
    if (!enter_container()) return Json();
    Json array = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return array;
    }
    while (!failed_) {
      array.push_back(parse_value());
      skip_ws();
      if (consume(']')) break;
      if (!expect(',')) break;
    }
    --depth_;
    return array;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          const auto result =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (result.ec != std::errc() || result.ptr != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
            return out;
          }
          pos_ += 4;
          // The sinks only emit \u for control characters; decode the
          // basic-multilingual-plane code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      fail("invalid number");
      return Json();
    }
    if (integral) {
      if (token[0] != '-') {
        std::uint64_t value = 0;
        const auto result =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (result.ec == std::errc() && result.ptr == token.data() + token.size()) {
          return Json(value);
        }
      } else {
        std::int64_t value = 0;
        const auto result =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (result.ec == std::errc() && result.ptr == token.data() + token.size()) {
          return Json(value);
        }
      }
      // Out-of-range integer literal: fall through to double.
    }
    double value = 0.0;
    const auto result = std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("invalid number");
      return Json();
    }
    return Json(value);
  }

  std::string_view text_;
  std::string* error_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  bool failed_ = false;
};

}  // namespace

Json Json::parse(std::string_view text, std::string* error, const JsonLimits& limits) {
  Parser parser(text, error, limits);
  Json value = parser.run();
  return parser.failed() ? Json() : value;
}

}  // namespace bacp::obs
