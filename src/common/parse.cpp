#include "common/parse.hpp"

#include <charconv>
#include <cmath>

namespace bacp::common {

namespace {

template <typename T>
ParseResult<T> fail(std::string message) {
  ParseResult<T> result;
  result.error = std::move(message);
  return result;
}

std::string quoted_tail(std::string_view tail) {
  return "trailing characters '" + std::string(tail) + "'";
}

template <typename T>
ParseResult<T> parse_integer(std::string_view text, const char* type_name) {
  if (text.empty()) return fail<T>("empty value");
  if constexpr (!std::is_signed_v<T>) {
    // std::strtoull silently negates "-1" into 2^64-1; std::from_chars
    // rejects the sign for unsigned types, but we name the failure mode.
    if (text.front() == '-') return fail<T>("negative value not allowed");
  }
  if (text.front() == '+') return fail<T>("leading '+' not allowed");
  T value{};
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (result.ec == std::errc::result_out_of_range) {
    return fail<T>(std::string("value out of range for ") + type_name);
  }
  if (result.ec != std::errc()) return fail<T>("not a number");
  if (result.ptr != text.data() + text.size()) {
    return fail<T>(quoted_tail(text.substr(
        static_cast<std::size_t>(result.ptr - text.data()))));
  }
  ParseResult<T> out;
  out.value = value;
  return out;
}

}  // namespace

ParseResult<std::uint64_t> parse_u64(std::string_view text) {
  return parse_integer<std::uint64_t>(text, "a 64-bit unsigned integer");
}

ParseResult<std::int64_t> parse_i64(std::string_view text) {
  return parse_integer<std::int64_t>(text, "a 64-bit signed integer");
}

ParseResult<double> parse_double(std::string_view text) {
  if (text.empty()) return fail<double>("empty value");
  if (text.front() == '+') return fail<double>("leading '+' not allowed");
  double value = 0.0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec == std::errc::result_out_of_range) {
    return fail<double>("value out of range for a double");
  }
  if (result.ec != std::errc()) return fail<double>("not a number");
  if (result.ptr != text.data() + text.size()) {
    return fail<double>(quoted_tail(text.substr(
        static_cast<std::size_t>(result.ptr - text.data()))));
  }
  if (!std::isfinite(value)) return fail<double>("non-finite value not allowed");
  ParseResult<double> out;
  out.value = value;
  return out;
}

ParseResult<bool> parse_bool(std::string_view text) {
  if (text.empty()) return fail<bool>("empty value");
  ParseResult<bool> out;
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    out.value = true;
  } else if (text == "0" || text == "false" || text == "no" || text == "off") {
    out.value = false;
  } else {
    return fail<bool>("not a boolean (use true/false, yes/no, on/off, 1/0)");
  }
  return out;
}

}  // namespace bacp::common
