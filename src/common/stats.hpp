#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace bacp::common {

/// Single-pass streaming statistics (Welford). Used for latency, queue
/// depth and Monte-Carlo result summaries.
class StreamingStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const StreamingStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of strictly positive values; the paper reports GM columns
/// in Figs. 8 and 9. Aborts on non-positive input — aggregation paths that
/// can legitimately see zeros (zero-miss sampled intervals) must use
/// guarded_geometric_mean instead.
double geometric_mean(std::span<const double> values);

/// Outcome of a guarded geometric mean: the mean over the guarded inputs
/// plus a structured account of what the guard had to do, so callers can
/// surface a warning instead of silently laundering degenerate data.
struct GuardedGeomean {
  double value = 0.0;      ///< geomean with non-positive inputs clamped
  std::size_t count = 0;   ///< inputs considered
  std::size_t clamped = 0; ///< non-positive inputs clamped up to epsilon

  bool clean() const { return clamped == 0; }
  /// "" when clean; otherwise one line naming the clamp count and epsilon.
  std::string warning(double epsilon) const;
};

/// Geometric mean that survives non-positive values: every value <= 0 is
/// clamped up to `epsilon` (keeping the population size honest — a zero
/// still drags the mean down hard) and counted in the result instead of
/// aborting the run. An empty range still aborts: that is a caller bug,
/// not a data property.
GuardedGeomean guarded_geometric_mean(std::span<const double> values,
                                      double epsilon = 1e-12);

/// Arithmetic mean.
double arithmetic_mean(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation between order
/// statistics (the numpy/R-7 definition): rank = p/100 * (n-1), value =
/// sorted[floor] + frac * (sorted[floor+1] - sorted[floor]). Symmetric at
/// the endpoints (p=0 -> min, p=100 -> max) and unbiased on small samples.
/// Sorts a copy; use percentile_sorted when taking many percentiles of one
/// sample.
double percentile(std::span<const double> values, double p);

/// percentile() over data the caller has already sorted ascending (no copy,
/// no re-sort). Aborts in debug builds if the span is not sorted.
double percentile_sorted(std::span<const double> sorted, double p);

/// Population-weighted mean with a normal-approximation confidence
/// interval, the extrapolation primitive of the sampled-interval estimator:
/// `values[i]` measured on a stratum carrying `weights[i]` population
/// members. The standard error uses the reliability-weights form of the
/// weighted sample variance, so scaling all weights by a constant changes
/// nothing.
struct WeightedMeanCi {
  double mean = 0.0;
  double std_error = 0.0;
  double ci_half = 0.0;  ///< z * std_error
  double weight_total = 0.0;

  double ci_low() const { return mean - ci_half; }
  double ci_high() const { return mean + ci_half; }
};

/// Aborts on empty input, mismatched spans, or non-positive total weight.
/// With a single stratum (or all weight on one value) the standard error is
/// 0 — the caller sees a degenerate interval, not a fabricated one.
WeightedMeanCi weighted_mean_ci(std::span<const double> values,
                                std::span<const double> weights, double z = 1.96);

/// Safe ratio: returns `fallback` when the denominator is zero.
inline double ratio(double numerator, double denominator, double fallback = 0.0) {
  return denominator == 0.0 ? fallback : numerator / denominator;
}

}  // namespace bacp::common
