#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace bacp::common {

/// Single-pass streaming statistics (Welford). Used for latency, queue
/// depth and Monte-Carlo result summaries.
class StreamingStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const StreamingStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of strictly positive values; the paper reports GM columns
/// in Figs. 8 and 9.
double geometric_mean(std::span<const double> values);

/// Arithmetic mean.
double arithmetic_mean(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on a sorted copy.
double percentile(std::span<const double> values, double p);

/// Safe ratio: returns `fallback` when the denominator is zero.
inline double ratio(double numerator, double denominator, double fallback = 0.0) {
  return denominator == 0.0 ? fallback : numerator / denominator;
}

}  // namespace bacp::common
