#include "common/simd.hpp"

#include <cstdio>
#include <string>

#include "common/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BACP_SIMD_X86 1
#endif

#if defined(__ARM_NEON)
#include <arm_neon.h>
#define BACP_SIMD_NEON 1
#endif

namespace bacp::common::simd {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::Scalar: return "scalar";
    case Tier::Avx2: return "avx2";
    case Tier::Neon: return "neon";
  }
  return "?";
}

namespace {

bool host_has_avx2() {
#ifdef BACP_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool host_has_neon() {
#ifdef BACP_SIMD_NEON
  return true;
#else
  return false;
#endif
}

/// BACP_SIMD handling follows the env.cpp convention: a missing variable
/// means "auto", and a value the host cannot honor warns to stderr and
/// falls back rather than silently changing meaning (results are identical
/// across tiers either way — only speed differs).
Tier resolve_tier() {
  const std::string pref = env_string("BACP_SIMD", "auto");
  if (pref == "off" || pref == "scalar" || pref == "0") return Tier::Scalar;
  if (pref == "avx2") {
    if (host_has_avx2()) return Tier::Avx2;
    std::fprintf(stderr, "warning: BACP_SIMD=avx2 but this host lacks AVX2; "
                         "using scalar kernels\n");
    return Tier::Scalar;
  }
  if (pref == "neon") {
    if (host_has_neon()) return Tier::Neon;
    std::fprintf(stderr, "warning: BACP_SIMD=neon but this build has no NEON; "
                         "using scalar kernels\n");
    return Tier::Scalar;
  }
  if (pref != "auto" && pref != "on" && pref != "1") {
    std::fprintf(stderr,
                 "warning: BACP_SIMD=\"%s\" not recognized "
                 "(off|scalar|avx2|neon|auto); using auto\n",
                 pref.c_str());
  }
  if (host_has_avx2()) return Tier::Avx2;
  if (host_has_neon()) return Tier::Neon;
  return Tier::Scalar;
}

}  // namespace

Tier active_tier() {
  static const Tier tier = resolve_tier();
  return tier;
}

namespace detail {

#ifdef BACP_SIMD_X86

__attribute__((target("avx2"))) std::uint32_t find_first_equal_u64_avx2(
    const std::uint64_t* values, std::uint32_t count, std::uint64_t needle) {
  const __m256i vneedle = _mm256_set1_epi64x(static_cast<long long>(needle));
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i eq = _mm256_cmpeq_epi64(chunk, vneedle);
    const auto mask =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    if (mask != 0) return i + static_cast<std::uint32_t>(__builtin_ctz(mask));
  }
  for (; i < count; ++i) {
    if (values[i] == needle) return i;
  }
  return kLaneNotFound;
}

__attribute__((target("avx2"))) void mix_to_partial_tags_avx2(
    const std::uint64_t* tag_bits, std::uint64_t* out, std::size_t count,
    std::uint32_t width_bits) {
  // 64x64 multiply from three 32x32 products (AVX2 has no vpmullq): with
  // a = [aH:aL] and the Fibonacci constant K = [kH:kL],
  //   a*K mod 2^64 = aL*kL + ((aH*kL + aL*kH) << 32).
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256i k_hi = _mm256_srli_epi64(k, 32);
  const int shift = static_cast<int>(64 - width_bits);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tag_bits + i));
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i lo = _mm256_mul_epu32(a, k);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(a_hi, k), _mm256_mul_epu32(a, k_hi));
    const __m256i prod = _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
    const __m256i mixed = _mm256_srli_epi64(prod, shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), mixed);
  }
  for (; i < count; ++i) {
    out[i] = (tag_bits[i] * kGolden) >> shift;
  }
}

__attribute__((target("avx2"))) std::size_t collect_masked_zero_avx2(
    const std::uint64_t* values, std::size_t count, std::uint64_t mask,
    std::uint32_t* out_indices) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t found = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(chunk, vmask), zero);
    auto hits =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    while (hits != 0) {
      const auto lane = static_cast<std::uint32_t>(__builtin_ctz(hits));
      out_indices[found++] = static_cast<std::uint32_t>(i) + lane;
      hits &= hits - 1;
    }
  }
  for (; i < count; ++i) {
    if ((values[i] & mask) == 0) {
      out_indices[found++] = static_cast<std::uint32_t>(i);
    }
  }
  return found;
}

__attribute__((target("avx2"))) void mu_scan_avx2(const double* prefix_hits,
                                                  std::size_t size, double total,
                                                  std::uint32_t current,
                                                  std::uint32_t max_extra,
                                                  double* out) {
  const double base =
      (current == 0 || size == 0)
          ? total
          : total - prefix_hits[(current < size ? current : size) - 1];
  const __m256d vbase = _mm256_set1_pd(base);
  const __m256d vtotal = _mm256_set1_pd(total);
  const __m256d vstep = _mm256_set1_pd(4.0);
  // Contiguous region: current + n <= size, so the lane loads walk
  // prefix_hits linearly. Each lane replays the scalar op sequence
  // (sub, sub, div) on the same operands — bit-identical, just 4-wide.
  const std::uint32_t contiguous =
      size > current
          ? (max_extra < static_cast<std::uint32_t>(size - current)
                 ? max_extra
                 : static_cast<std::uint32_t>(size - current))
          : 0;
  std::uint32_t n = 1;
  __m256d vn = _mm256_set_pd(4.0, 3.0, 2.0, 1.0);
  for (; n + 3 <= contiguous; n += 4) {
    const __m256d p = _mm256_loadu_pd(prefix_hits + current + n - 1);
    const __m256d at_w = _mm256_sub_pd(vtotal, p);
    const __m256d removed = _mm256_sub_pd(vbase, at_w);
    _mm256_storeu_pd(out + n - 1, _mm256_div_pd(removed, vn));
    vn = _mm256_add_pd(vn, vstep);
  }
  for (; n <= contiguous; ++n) {
    const double at_w = total - prefix_hits[current + n - 1];
    out[n - 1] = (base - at_w) / static_cast<double>(n);
  }
  if (n > max_extra) return;
  // Clamped region: current + n > size, so miss(current + n) is the
  // constant deep-miss floor and only the divisor varies per lane.
  const double at_deep = size == 0 ? total : total - prefix_hits[size - 1];
  const double removed_deep = base - at_deep;
  const __m256d vremoved = _mm256_set1_pd(removed_deep);
  vn = _mm256_set_pd(static_cast<double>(n + 3), static_cast<double>(n + 2),
                     static_cast<double>(n + 1), static_cast<double>(n));
  for (; n + 3 <= max_extra; n += 4) {
    _mm256_storeu_pd(out + n - 1, _mm256_div_pd(vremoved, vn));
    vn = _mm256_add_pd(vn, vstep);
  }
  for (; n <= max_extra; ++n) {
    out[n - 1] = removed_deep / static_cast<double>(n);
  }
}

__attribute__((target("avx2"))) void miss_counts_avx2(
    const double* const* prefixes, const std::uint32_t* sizes, const double* totals,
    const std::uint32_t* ways, std::size_t count, double* out) {
  // The prefix reads are per-lane gathers from distinct curve arrays, so
  // they stay scalar; the clamp-select and subtract run 4-wide. Lanes are
  // independent IEEE ops — bit-identical to the scalar reference.
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    double gathered[4];
    double zero_mask[4];
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const std::uint32_t w = ways[i + lane];
      const std::uint32_t s = sizes[i + lane];
      if (w == 0 || s == 0) {
        gathered[lane] = 0.0;
        zero_mask[lane] = 0.0;
      } else {
        gathered[lane] = prefixes[i + lane][(w < s ? w : s) - 1];
        zero_mask[lane] = 1.0;
      }
    }
    const __m256d vtotal = _mm256_loadu_pd(totals + i);
    const __m256d vprefix =
        _mm256_mul_pd(_mm256_loadu_pd(gathered), _mm256_loadu_pd(zero_mask));
    _mm256_storeu_pd(out + i, _mm256_sub_pd(vtotal, vprefix));
  }
  for (; i < count; ++i) {
    if (ways[i] == 0 || sizes[i] == 0) {
      out[i] = totals[i];
    } else {
      out[i] = totals[i] - prefixes[i][(ways[i] < sizes[i] ? ways[i] : sizes[i]) - 1];
    }
  }
}

__attribute__((target("avx2"))) std::uint32_t probe_group16_avx2(
    const unsigned char* bytes, std::uint64_t needle) {
  const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes));
  const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + 32));
  // unpacklo gathers the key qwords of the four slots, but in the scrambled
  // lane order [k0, k2, k1, k3] (it interleaves per 128-bit half).
  const __m256i keys = _mm256_unpacklo_epi64(v0, v1);
  const __m256i eq =
      _mm256_cmpeq_epi64(keys, _mm256_set1_epi64x(static_cast<long long>(needle)));
  const auto scrambled =
      static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
  const std::uint32_t match_raw =
      (scrambled & 1u) | (((scrambled >> 2) & 1u) << 1) |
      (((scrambled >> 1) & 1u) << 2) | (((scrambled >> 3) & 1u) << 3);
  // The occupancy byte holds 0 or 1, whose sign bit is always clear, so
  // movemask alone cannot see it — compare bytes against zero first. Slot
  // n's occupancy byte lands at bit 12 (n even) / 28 (n odd) of its half.
  const __m256i zero = _mm256_setzero_si256();
  const auto z0 =
      static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v0, zero)));
  const auto z1 =
      static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v1, zero)));
  const std::uint32_t empty = ((z0 >> 12) & 1u) | (((z0 >> 28) & 1u) << 1) |
                              (((z1 >> 12) & 1u) << 2) | (((z1 >> 28) & 1u) << 3);
  const std::uint32_t match = match_raw & ~empty;
  const std::uint32_t events = match | empty;
  if (events == 0) return kLaneNotFound;
  const auto lane = static_cast<std::uint32_t>(__builtin_ctz(events));
  return ((match >> lane) & 1u) != 0 ? (lane | kGroupMatchBit) : lane;
}

__attribute__((target("avx2"))) std::uint64_t probe_run16_avx2(
    const unsigned char* base, std::uint64_t mask, std::uint64_t slot,
    std::uint64_t needle) {
  const std::uint64_t count = mask + 1;
  const __m256i vneedle = _mm256_set1_epi64x(static_cast<long long>(needle));
  const __m256i zero = _mm256_setzero_si256();
  // Grouped probe while a full four-slot window fits before the array end;
  // the rare wrap-around finishes slot-by-slot and re-enters at slot 0 (a
  // probe run is shorter than the table — load stays under 7/8 — so it
  // wraps at most once).
  while (slot + kGroupSlots <= count) {
    const unsigned char* bytes = base + slot * kGroupSlotBytes;
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + 32));
    const __m256i keys = _mm256_unpacklo_epi64(v0, v1);
    const __m256i eq = _mm256_cmpeq_epi64(keys, vneedle);
    const auto scrambled =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    const std::uint32_t match_raw =
        (scrambled & 1u) | (((scrambled >> 2) & 1u) << 1) |
        (((scrambled >> 1) & 1u) << 2) | (((scrambled >> 3) & 1u) << 3);
    const auto z0 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v0, zero)));
    const auto z1 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v1, zero)));
    const std::uint32_t empty = ((z0 >> 12) & 1u) | (((z0 >> 28) & 1u) << 1) |
                                (((z1 >> 12) & 1u) << 2) | (((z1 >> 28) & 1u) << 3);
    const std::uint32_t match = match_raw & ~empty;
    const std::uint32_t events = match | empty;
    if (events == 0) {
      slot = (slot + kGroupSlots) & mask;
      continue;
    }
    const auto lane = static_cast<std::uint32_t>(__builtin_ctz(events));
    return ((slot + lane) << 1) | (((match >> lane) & 1u) != 0 ? kRunMatch : 0);
  }
  while (slot < count) {
    const unsigned char* bytes = base + slot * kGroupSlotBytes;
    if (bytes[kGroupOccupiedOffset] == 0) return slot << 1;
    std::uint64_t key;
    __builtin_memcpy(&key, bytes, sizeof(key));
    if (key == needle) return (slot << 1) | kRunMatch;
    ++slot;
  }
  return probe_run16_avx2(base, mask, 0, needle);
}

#else  // !BACP_SIMD_X86: keep the symbols, route to scalar.

std::uint32_t find_first_equal_u64_avx2(const std::uint64_t* values,
                                        std::uint32_t count, std::uint64_t needle) {
  return find_first_equal_u64_scalar(values, count, needle);
}

void mix_to_partial_tags_avx2(const std::uint64_t* tag_bits, std::uint64_t* out,
                              std::size_t count, std::uint32_t width_bits) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (tag_bits[i] * 0x9E3779B97F4A7C15ull) >> (64 - width_bits);
  }
}

std::size_t collect_masked_zero_avx2(const std::uint64_t* values, std::size_t count,
                                     std::uint64_t mask, std::uint32_t* out_indices) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if ((values[i] & mask) == 0) out_indices[found++] = static_cast<std::uint32_t>(i);
  }
  return found;
}

std::uint32_t probe_group16_avx2(const unsigned char* bytes, std::uint64_t needle) {
  return probe_group16_scalar(bytes, needle);
}

void mu_scan_avx2(const double* prefix_hits, std::size_t size, double total,
                  std::uint32_t current, std::uint32_t max_extra, double* out) {
  mu_scan_scalar(prefix_hits, size, total, current, max_extra, out);
}

void miss_counts_avx2(const double* const* prefixes, const std::uint32_t* sizes,
                      const double* totals, const std::uint32_t* ways,
                      std::size_t count, double* out) {
  miss_counts_scalar(prefixes, sizes, totals, ways, count, out);
}

std::uint64_t probe_run16_avx2(const unsigned char* base, std::uint64_t mask,
                               std::uint64_t slot, std::uint64_t needle) {
  return probe_run16_scalar(base, mask, slot, needle);
}

#endif  // BACP_SIMD_X86

#ifdef BACP_SIMD_NEON

std::uint32_t find_first_equal_u64_neon(const std::uint64_t* values,
                                        std::uint32_t count, std::uint64_t needle) {
  const uint64x2_t vneedle = vdupq_n_u64(needle);
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(values + i), vneedle);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < count; ++i) {
    if (values[i] == needle) return i;
  }
  return kLaneNotFound;
}

void mix_to_partial_tags_neon(const std::uint64_t* tag_bits, std::uint64_t* out,
                              std::size_t count, std::uint32_t width_bits) {
  // NEON's 64-bit lane multiply is scalar-per-lane anyway; the win here is
  // the load/store pipelining, so a plain loop is the honest kernel.
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
  const std::uint32_t shift = 64 - width_bits;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (tag_bits[i] * kGolden) >> shift;
  }
}

std::size_t collect_masked_zero_neon(const std::uint64_t* values, std::size_t count,
                                     std::uint64_t mask, std::uint32_t* out_indices) {
  const uint64x2_t vmask = vdupq_n_u64(mask);
  std::size_t found = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t masked = vandq_u64(vld1q_u64(values + i), vmask);
    if (vgetq_lane_u64(masked, 0) == 0) {
      out_indices[found++] = static_cast<std::uint32_t>(i);
    }
    if (vgetq_lane_u64(masked, 1) == 0) {
      out_indices[found++] = static_cast<std::uint32_t>(i + 1);
    }
  }
  for (; i < count; ++i) {
    if ((values[i] & mask) == 0) out_indices[found++] = static_cast<std::uint32_t>(i);
  }
  return found;
}

#else  // !BACP_SIMD_NEON

std::uint32_t find_first_equal_u64_neon(const std::uint64_t* values,
                                        std::uint32_t count, std::uint64_t needle) {
  return find_first_equal_u64_scalar(values, count, needle);
}

void mix_to_partial_tags_neon(const std::uint64_t* tag_bits, std::uint64_t* out,
                              std::size_t count, std::uint32_t width_bits) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (tag_bits[i] * 0x9E3779B97F4A7C15ull) >> (64 - width_bits);
  }
}

std::size_t collect_masked_zero_neon(const std::uint64_t* values, std::size_t count,
                                     std::uint64_t mask, std::uint32_t* out_indices) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if ((values[i] & mask) == 0) out_indices[found++] = static_cast<std::uint32_t>(i);
  }
  return found;
}

#endif  // BACP_SIMD_NEON

}  // namespace detail

void mix_to_partial_tags(const std::uint64_t* tag_bits, std::uint64_t* out,
                         std::size_t count, std::uint32_t width_bits) {
  switch (active_tier()) {
    case Tier::Avx2:
      detail::mix_to_partial_tags_avx2(tag_bits, out, count, width_bits);
      return;
    case Tier::Neon:
      detail::mix_to_partial_tags_neon(tag_bits, out, count, width_bits);
      return;
    case Tier::Scalar: break;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (tag_bits[i] * 0x9E3779B97F4A7C15ull) >> (64 - width_bits);
  }
}

std::size_t collect_masked_zero(const std::uint64_t* values, std::size_t count,
                                std::uint64_t mask, std::uint32_t* out_indices) {
  switch (active_tier()) {
    case Tier::Avx2:
      return detail::collect_masked_zero_avx2(values, count, mask, out_indices);
    case Tier::Neon:
      return detail::collect_masked_zero_neon(values, count, mask, out_indices);
    case Tier::Scalar: break;
  }
  std::size_t found = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if ((values[i] & mask) == 0) out_indices[found++] = static_cast<std::uint32_t>(i);
  }
  return found;
}

}  // namespace bacp::common::simd
