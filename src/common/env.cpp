#include "common/env.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/parse.hpp"

namespace bacp::common {

namespace {

void warn_malformed(const char* name, const char* raw, const std::string& reason) {
  std::fprintf(stderr, "warning: ignoring malformed environment variable %s='%s': %s\n",
               name, raw, reason.c_str());
}

}  // namespace

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto result = parse_u64(raw);
  if (!result) {
    warn_malformed(name, raw, result.error);
    return fallback;
  }
  return *result;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto result = parse_double(raw);
  if (!result) {
    warn_malformed(name, raw, result.error);
    return fallback;
  }
  return *result;
}

bool env_bool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto result = parse_bool(raw);
  if (!result) {
    warn_malformed(name, raw, result.error);
    return fallback;
  }
  return *result;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace bacp::common
