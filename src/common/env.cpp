#include "common/env.hpp"

#include <cstdlib>

namespace bacp::common {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace bacp::common
