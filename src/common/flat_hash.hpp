#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/huge_alloc.hpp"
#include "common/simd.hpp"

namespace bacp::common {

/// Open-addressing hash map with 64-bit keys, linear probing and
/// backward-shift deletion. Built for the simulator's per-access block
/// indices (DNUCA residency, MOESI directory), where
/// `std::unordered_map`'s node allocation/deallocation per insert/erase
/// dominated the profile. Each slot carries its own occupancy flag, so a
/// probe touches exactly one contiguous slot array; the table only
/// rehashes on growth, and erase leaves no tombstones — so a table sized
/// with reserve() never allocates again.
///
/// Iteration order is unspecified; callers needing deterministic output
/// must sort externally. References returned by find()/find_or_emplace()
/// are invalidated by any subsequent insert or erase.
template <typename Value>
class FlatHash64 {
 public:
  using Key = std::uint64_t;

  FlatHash64() { rehash(kMinCapacity); }

  /// Pre-sizes the table so `count` entries fit without any further
  /// allocation (steady-state hot paths stay allocation-free).
  void reserve(std::size_t count) {
    std::size_t needed = kMinCapacity;
    while (needed * kMaxLoadNum < count * kMaxLoadDen) needed *= 2;
    if (needed > capacity()) rehash(needed);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  Value* find(Key key) {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }
  const Value* find(Key key) const {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }

  /// Issues a read prefetch for `key`'s probe line. The batched access
  /// pipeline resolves probe addresses a whole batch ahead of the lookups,
  /// so the table's (cold, multi-MB) slot array misses overlap instead of
  /// serializing — the mutating find() that follows still decides.
  void prefetch(Key key) const { simd::prefetch_read(&slots_[ideal_slot(key)]); }

  /// Batched lookup: out[i] = find(keys[i]) for each of the `count` keys.
  /// Same probe sequence and results as scalar find(); when the slot layout
  /// is SIMD-eligible (16-byte slots), the probe runs four slots per step.
  /// Pointers obey the same invalidation rule as find().
  void find_batch(const Key* keys, std::uint32_t count, Value** out) {
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t slot = find_slot(keys[i]);
      out[i] = slot == kNotFound ? nullptr : &slots_[slot].value;
    }
  }

  /// Returns the value for `key`, default-constructing it if absent (the
  /// `operator[]` idiom).
  Value& find_or_emplace(Key key) {
    auto [slot, matched] = probe_run(key);
    if (matched) return slots_[slot].value;
    if (grow_if_needed()) slot = insert_position(key);
    slots_[slot].key = key;
    slots_[slot].value = Value{};
    slots_[slot].occupied = true;
    ++size_;
    return slots_[slot].value;
  }

  void insert_or_assign(Key key, Value value) {
    auto [slot, matched] = probe_run(key);
    if (matched) {
      slots_[slot].value = std::move(value);
      return;
    }
    if (grow_if_needed()) slot = insert_position(key);
    slots_[slot].key = key;
    slots_[slot].value = std::move(value);
    slots_[slot].occupied = true;
    ++size_;
  }

  bool erase(Key key) {
    std::size_t hole = find_slot(key);
    if (hole == kNotFound) return false;
    // Backward-shift deletion: pull every displaced entry of the probe run
    // one slot toward its ideal position, so lookups never need tombstones.
    std::size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask_;
      if (!slots_[probe].occupied) break;
      const std::size_t ideal = ideal_slot(slots_[probe].key);
      if (((probe - ideal) & mask_) >= ((probe - hole) & mask_)) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
    }
    slots_[hole].occupied = false;
    --size_;
    return true;
  }

  void clear() {
    for (Slot& slot : slots_) slot.occupied = false;
    size_ = 0;
  }

  /// Invokes fn(key, value) for every occupied slot, in unspecified order.
  /// Read-only walk for invariant audits and debugging; fn must not insert
  /// into or erase from the table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key = 0;
    Value value{};
    bool occupied = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  // Grow past 7/8 load: linear probing stays short and growth stays rare.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  // The SIMD group probe reads raw slot bytes under the probe_group16
  // layout contract (16-byte slots, key at 0, occupancy byte at 12); any
  // Value that packs differently transparently keeps the scalar probe.
  static constexpr bool kGroupProbeEligible =
      std::is_standard_layout_v<Slot> && std::is_trivially_copyable_v<Value> &&
      sizeof(Slot) == simd::detail::kGroupSlotBytes &&
      offsetof(Slot, key) == 0 &&
      offsetof(Slot, occupied) == simd::detail::kGroupOccupiedOffset;

  std::size_t ideal_slot(Key key) const {
    // Fibonacci multiplicative hash; the high bits select the slot.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  /// One probe walk that serves every operation: returns key's slot with
  /// matched == true, or — key absent — the empty slot that ended the run
  /// (exactly where insert_position() would land the key) with matched ==
  /// false. In the SIMD tiers one dispatched call probes the entire run
  /// four slots per step — tier check and call overhead paid once per
  /// lookup, not per group (a 7/8-load table keeps runs short, so per-group
  /// dispatch used to cost more than the vector compare saved).
  std::pair<std::size_t, bool> probe_run(Key key) const {
    std::size_t slot = ideal_slot(key);
    if constexpr (kGroupProbeEligible) {
      if (simd::active_tier() == simd::Tier::Avx2) {
        const std::uint64_t run = simd::detail::probe_run16_avx2(
            reinterpret_cast<const unsigned char*>(slots_.data()), mask_, slot, key);
        return {static_cast<std::size_t>(run >> 1),
                (run & simd::detail::kRunMatch) != 0};
      }
    }
    while (slots_[slot].occupied) {
      if (slots_[slot].key == key) return {slot, true};
      slot = (slot + 1) & mask_;
    }
    return {slot, false};
  }

  std::size_t find_slot(Key key) const {
    const auto [slot, matched] = probe_run(key);
    return matched ? slot : kNotFound;
  }

  std::size_t insert_position(Key key) const {
    std::size_t slot = ideal_slot(key);
    while (slots_[slot].occupied) slot = (slot + 1) & mask_;
    return slot;
  }

  /// Returns true when a rehash happened (probe-run slots are stale then).
  bool grow_if_needed() {
    if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      rehash(capacity() * 2);
      return true;
    }
    return false;
  }

  void rehash(std::size_t new_capacity) {
    BACP_ASSERT(std::has_single_bit(new_capacity), "capacity must be a power of two");
    std::vector<Slot, HugePageAlloc<Slot>> old_slots = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64 - static_cast<std::uint32_t>(std::countr_zero(new_capacity));
    for (Slot& old_slot : old_slots) {
      if (!old_slot.occupied) continue;
      const std::size_t slot = insert_position(old_slot.key);
      slots_[slot] = std::move(old_slot);
    }
  }

  // Hugepage-advised storage: the table is the large random-access
  // structure on the access path, and TLB-resident probes are what let the
  // pipeline's prefetches issue at all (see HugePageAlloc).
  std::vector<Slot, HugePageAlloc<Slot>> slots_;
  std::size_t mask_ = 0;
  std::uint32_t shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace bacp::common
