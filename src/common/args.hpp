#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bacp::common {

/// Minimal command-line flag parser for the example drivers and tools.
/// Accepts `--key=value`, `--key value` and boolean `--flag` forms;
/// anything not starting with `--` is a positional argument. Unknown flags
/// are an error (collected, reported by error()).
class ArgParser {
 public:
  /// `spec` declares the accepted flags: name -> help text. A trailing '='
  /// in the name marks a value flag ("trials=" takes a value, "verbose"
  /// does not).
  ArgParser(std::vector<std::pair<std::string, std::string>> spec);

  /// Parses argv. Returns false if unknown flags or malformed input were
  /// seen (error() explains).
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Usage text built from the spec.
  std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string help_text;
    bool takes_value = false;
  };
  std::map<std::string, Flag> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace bacp::common
