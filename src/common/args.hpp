#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bacp::common {

/// Minimal command-line flag parser for the example drivers and tools.
/// Accepts `--key=value`, `--key value` and boolean `--flag` forms;
/// anything not starting with `--` is a positional argument. Unknown flags
/// are an error (collected, reported by error()).
///
/// Typed access is strict: a flag that is present but malformed
/// (`--trials=10k`, `--threads=-1`, an out-of-range literal) is a fatal
/// usage error — the accessor prints the offending flag, its raw value and
/// the usage text to stderr and exits with status 2. It never falls back to
/// a default, because a silently "repaired" knob mislabels every artifact
/// the run produces. Only an *absent* flag yields the fallback.
class ArgParser {
 public:
  /// `spec` declares the accepted flags: name -> help text. A trailing '='
  /// in the name marks a value flag ("trials=" takes a value, "verbose"
  /// does not).
  ArgParser(std::vector<std::pair<std::string, std::string>> spec);

  /// Parses argv. Returns false if unknown flags or malformed input were
  /// seen (error() explains). Remembers argv[0] for usage messages.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Strict typed accessors: absent flag -> fallback; present-but-malformed
  /// flag -> message naming the flag + usage text on stderr, exit(2).
  std::uint64_t get_u64_or_fail(const std::string& name, std::uint64_t fallback) const;
  std::int64_t get_i64_or_fail(const std::string& name, std::int64_t fallback) const;
  double get_double_or_fail(const std::string& name, double fallback) const;
  bool get_bool_or_fail(const std::string& name, bool fallback) const;

  /// Required flags: absent *or* malformed is the same fatal usage error.
  std::uint64_t require_u64(const std::string& name) const;
  double require_double(const std::string& name) const;
  std::string require_string(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Usage text built from the spec.
  std::string help(const std::string& program) const;

  /// Prints "error: <message>" plus the usage text and exits with status 2.
  /// Public so composed knob readers (harness::read_toggle) report malformed
  /// values through the same fatal-usage path as the typed accessors.
  [[noreturn]] void fatal_usage(const std::string& message) const;

 private:
  struct Flag {
    std::string help_text;
    bool takes_value = false;
  };

  const std::string* raw_or_fatal_if_missing(const std::string& name) const;

  std::map<std::string, Flag> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
  std::string program_ = "program";
};

}  // namespace bacp::common
