#pragma once

#include <array>
#include <cstddef>

#include "common/assert.hpp"

namespace bacp::common {

/// Fixed-capacity vector with inline storage: the hot-path replacement for
/// small `std::vector` result buffers whose element count has a known small
/// bound (e.g. lines evicted by one L2 access). No heap allocation, ever;
/// exceeding the capacity is a logic error, not a growth trigger.
///
/// Elements must be default-constructible (the backing array is
/// value-initialized up front); destruction of popped elements is deferred
/// to the container going out of scope, which is fine for the trivially
/// destructible bookkeeping structs this is used for.
template <typename T, std::size_t N>
class InlineVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  void push_back(const T& value) {
    BACP_ASSERT(size_ < N, "InlineVec capacity exceeded");
    items_[size_++] = value;
  }
  void push_back(T&& value) {
    BACP_ASSERT(size_ < N, "InlineVec capacity exceeded");
    items_[size_++] = static_cast<T&&>(value);
  }

  void clear() { size_ = 0; }
  void pop_back() {
    BACP_ASSERT(size_ > 0, "pop_back on empty InlineVec");
    --size_;
  }

  std::size_t size() const { return size_; }
  static constexpr std::size_t capacity() { return N; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    BACP_DASSERT(i < size_, "InlineVec index out of range");
    return items_[i];
  }
  const T& operator[](std::size_t i) const {
    BACP_DASSERT(i < size_, "InlineVec index out of range");
    return items_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return items_.data(); }
  iterator end() { return items_.data() + size_; }
  const_iterator begin() const { return items_.data(); }
  const_iterator end() const { return items_.data() + size_; }

 private:
  std::array<T, N> items_{};
  std::size_t size_ = 0;
};

}  // namespace bacp::common
