#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bacp::common {

/// Result of strictly parsing one external input token (a flag value, an
/// environment variable, a config field). Either a value or a human-readable
/// reason — never a silently repaired default. Every boundary that ingests
/// text (common/args, common/env, trace headers, JSON) routes through the
/// parse_* helpers below so the whole system shares one notion of "valid":
///   - empty input is an error, not zero;
///   - trailing garbage is an error ("10k" is not 10);
///   - "-1" is an error for unsigned types, not 2^64-1 (strtoull wraps;
///     std::from_chars does not, and we reject the sign explicitly);
///   - out-of-range values are an error, not ULLONG_MAX/HUGE_VAL saturation;
///   - non-finite doubles ("inf", "nan") are rejected — no config knob in
///     this system meaningfully accepts them.
template <typename T>
struct ParseResult {
  std::optional<T> value;
  std::string error;  ///< set iff !ok(); reason only, caller names the source

  bool ok() const { return value.has_value(); }
  explicit operator bool() const { return ok(); }
  const T& operator*() const { return *value; }
};

ParseResult<std::uint64_t> parse_u64(std::string_view text);
ParseResult<std::int64_t> parse_i64(std::string_view text);
ParseResult<double> parse_double(std::string_view text);
/// Accepts 1/0, true/false, yes/no, on/off (lowercase).
ParseResult<bool> parse_bool(std::string_view text);

}  // namespace bacp::common
