#include "common/fsio.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bacp::common {

MappedFile MappedFile::open(const std::string& path) {
  MappedFile file;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return file;
  struct stat info;
  if (::fstat(fd, &info) != 0 || info.st_size <= 0) {
    ::close(fd);
    return file;
  }
  const std::size_t size = static_cast<std::size_t>(info.st_size);
  // MAP_PRIVATE: the simulator never writes through the map, and a private
  // mapping keeps a concurrent truncate of the bank entry from faulting us
  // on pages we already touched (the length is pinned at map time either
  // way; SIGBUS is only reachable by an in-place shrink, which the banks'
  // rename-only publish protocol never performs).
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (mapped == MAP_FAILED) return file;
  file.data_ = static_cast<const std::uint8_t*>(mapped);
  file.size_ = size;
  return file;
}

void MappedFile::reset() {
  if (data_ != nullptr) {
    // const_cast: munmap's signature predates const; the pages themselves
    // were never written through this mapping.
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

namespace {

/// Raw byte copy through POSIX descriptors, fsync'd before close so the
/// subsequent rename can never publish a file whose data is still only in
/// the page cache (the crash-consistency half of "copy+fsync+rename").
bool copy_bytes_synced(const std::string& from, const std::string& to) {
  const int in = ::open(from.c_str(), O_RDONLY | O_CLOEXEC);
  if (in < 0) return false;
  const int out =
      ::open(to.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (out < 0) {
    ::close(in);
    return false;
  }
  bool ok = true;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(in, buffer, sizeof(buffer));
    if (got == 0) break;
    if (got < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    ssize_t written = 0;
    while (written < got) {
      const ssize_t put = ::write(out, buffer + written, static_cast<std::size_t>(got - written));
      if (put < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      written += put;
    }
    if (!ok) break;
  }
  if (ok && ::fsync(out) != 0) ok = false;
  ::close(in);
  if (::close(out) != 0) ok = false;
  if (!ok) std::remove(to.c_str());
  return ok;
}

/// Process-unique sibling temp name next to `final_path`, so concurrent
/// shard processes publishing into one bank never clobber each other's
/// staging files.
std::string sibling_temp(const std::string& final_path) {
  return final_path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
}

}  // namespace

bool publish_file_by_copy(const std::string& temp_path, const std::string& final_path) {
  const std::string sibling = sibling_temp(final_path);
  if (!copy_bytes_synced(temp_path, sibling)) {
    std::remove(temp_path.c_str());
    return false;
  }
  if (std::rename(sibling.c_str(), final_path.c_str()) != 0) {
    std::remove(sibling.c_str());
    std::remove(temp_path.c_str());
    return false;
  }
  std::remove(temp_path.c_str());
  return true;
}

bool publish_file_atomic(const std::string& temp_path, const std::string& final_path) {
  if (std::rename(temp_path.c_str(), final_path.c_str()) == 0) return true;
  if (errno == EXDEV) return publish_file_by_copy(temp_path, final_path);
  std::remove(temp_path.c_str());
  return false;
}

std::string staging_directory(const std::string& destination_directory) {
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
  return destination_directory;
}

}  // namespace bacp::common
