#include "common/thread_pool.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace bacp::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    BACP_ASSERT(!shutting_down_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.wait(lock);
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Dynamic chunking: a shared atomic cursor keeps all workers busy even
  // when per-iteration cost is highly non-uniform (e.g. detailed simulation
  // trials next to analytic ones).
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining_tasks = std::make_shared<std::atomic<std::size_t>>(workers_.size());
  Mutex done_mutex;
  CondVar done_cv;
  bool done = false;

  for (std::size_t t = 0; t < workers_.size(); ++t) {
    submit([&, cursor, remaining_tasks] {
      while (true) {
        const std::size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        body(i);
      }
      if (remaining_tasks->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(done_mutex);
        done = true;
        done_cv.notify_one();
      }
    });
  }

  MutexLock lock(done_mutex);
  while (!done) done_cv.wait(lock);
}

}  // namespace bacp::common
