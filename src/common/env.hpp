#pragma once

#include <cstdint>
#include <string>

namespace bacp::common {

/// Environment-variable overrides for benchmark scale knobs
/// (e.g. BACP_MC_TRIALS, BACP_SIM_ACCESSES). Missing or malformed values
/// fall back to the supplied default, so `for b in build/bench/*; do $b; done`
/// always runs with sane laptop-scale settings.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace bacp::common
