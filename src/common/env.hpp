#pragma once

#include <cstdint>
#include <string>

namespace bacp::common {

/// Environment-variable overrides for benchmark scale knobs
/// (e.g. BACP_MC_TRIALS, BACP_SIM_ACCESSES). A missing or empty variable
/// falls back to the supplied default, so `for b in build/bench/*; do $b; done`
/// always runs with sane laptop-scale settings. A variable that is *set but
/// malformed* (typo, trailing garbage, negative for an unsigned knob,
/// out-of-range) is never silently repaired: a warning naming the variable,
/// the rejected value and the reason is printed to stderr before the default
/// is used, so a mis-set knob can't invisibly change what an experiment ran.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);
double env_double(const char* name, double fallback);
bool env_bool(const char* name, bool fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace bacp::common
