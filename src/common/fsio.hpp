#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace bacp::common {

/// Read-only memory-mapped file: the zero-copy read path for snapshot
/// banks. open() maps the whole file MAP_PRIVATE; bytes() spans exactly the
/// file's length at map time (a concurrently republished bank entry is
/// invisible — the map pins the old inode's pages, which is precisely the
/// torn-read immunity the banks' atomic-rename publish contract promises).
/// Move-only; the mapping is released on destruction, so any span handed
/// out must not outlive the MappedFile (holders share ownership via
/// shared_ptr<MappedFile> — see snapshot::SystemSnapshot's backing).
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~MappedFile() { reset(); }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Returns an invalid (empty) MappedFile on any
  /// failure — missing file, empty file, fstat/mmap error — never a partial
  /// map: callers branch on valid() and fall back to buffered reads or a
  /// cache miss.
  static MappedFile open(const std::string& path);

  bool valid() const { return data_ != nullptr; }
  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }

 private:
  void reset();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Atomically publishes `temp_path` at `final_path`: a reader concurrently
/// opening `final_path` sees either the previous file or the complete new
/// one, never a torn write. The fast path is rename(2). When the two paths
/// live on different filesystems (EXDEV — e.g. the temp was staged in a
/// tmpfs TMPDIR while the destination is a disk-backed snapshot bank), the
/// bytes are copied into a process-unique sibling temp *in the destination
/// directory*, fsync'd, and renamed from there, so the final hop is always
/// same-filesystem and stays atomic.
///
/// On success the temp file is gone (renamed or copied-then-removed). On
/// failure the temp file is removed and false is returned; the caller
/// decides whether that is fatal (shard artifacts) or a tolerable cache
/// miss (snapshot banks).
bool publish_file_atomic(const std::string& temp_path, const std::string& final_path);

/// The EXDEV fallback half of publish_file_atomic, exposed so tests can
/// exercise the copy path directly on hosts where every mount is one
/// filesystem: copies `temp_path` into a sibling temp of `final_path`,
/// fsyncs, renames, and removes `temp_path`. Returns false (cleaning up
/// both temps) on any failure.
bool publish_file_by_copy(const std::string& temp_path, const std::string& final_path);

/// Staging directory for temp files that will be published into
/// `destination_directory`: honors TMPDIR when set and non-empty (the
/// conventional fast scratch filesystem), otherwise stages next to the
/// destination. publish_file_atomic() absorbs the cross-filesystem rename
/// this can produce.
std::string staging_directory(const std::string& destination_directory);

}  // namespace bacp::common
