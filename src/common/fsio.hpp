#pragma once

#include <string>

namespace bacp::common {

/// Atomically publishes `temp_path` at `final_path`: a reader concurrently
/// opening `final_path` sees either the previous file or the complete new
/// one, never a torn write. The fast path is rename(2). When the two paths
/// live on different filesystems (EXDEV — e.g. the temp was staged in a
/// tmpfs TMPDIR while the destination is a disk-backed snapshot bank), the
/// bytes are copied into a process-unique sibling temp *in the destination
/// directory*, fsync'd, and renamed from there, so the final hop is always
/// same-filesystem and stays atomic.
///
/// On success the temp file is gone (renamed or copied-then-removed). On
/// failure the temp file is removed and false is returned; the caller
/// decides whether that is fatal (shard artifacts) or a tolerable cache
/// miss (snapshot banks).
bool publish_file_atomic(const std::string& temp_path, const std::string& final_path);

/// The EXDEV fallback half of publish_file_atomic, exposed so tests can
/// exercise the copy path directly on hosts where every mount is one
/// filesystem: copies `temp_path` into a sibling temp of `final_path`,
/// fsyncs, renames, and removes `temp_path`. Returns false (cleaning up
/// both temps) on any failure.
bool publish_file_by_copy(const std::string& temp_path, const std::string& final_path);

/// Staging directory for temp files that will be published into
/// `destination_directory`: honors TMPDIR when set and non-empty (the
/// conventional fast scratch filesystem), otherwise stages next to the
/// destination. publish_file_atomic() absorbs the cross-filesystem rename
/// this can produce.
std::string staging_directory(const std::string& destination_directory);

}  // namespace bacp::common
