#pragma once

#include <cstddef>
#include <cstdint>

namespace bacp::common::simd {

/// Vector instruction tier the process resolved at startup. One binary
/// serves every host: the AVX2 kernels are compiled with a function-level
/// target attribute and only ever called after a runtime CPUID check, and
/// NEON is selected at compile time on AArch64 (where it is baseline).
enum class Tier : std::uint8_t {
  Scalar = 0,
  Avx2 = 1,
  Neon = 2,
};

const char* to_string(Tier tier);

/// The active tier: compile-time availability ∩ runtime CPU support ∩ the
/// BACP_SIMD escape hatch. BACP_SIMD accepts "off"/"scalar" (force scalar),
/// "avx2"/"neon" (force a tier, fatal if the host cannot run it) and
/// "auto"/unset (best available). Resolved once per process; the batched
/// pipeline is bit-identical across tiers, so this is purely a speed dial.
Tier active_tier();

/// Sentinel for "no matching lane".
inline constexpr std::uint32_t kLaneNotFound = 0xFFFFFFFFu;

/// probe_group16 result flag: the first match-or-empty event is a key match
/// (otherwise it is an empty slot, which terminates a linear-probe run).
inline constexpr std::uint32_t kGroupMatchBit = 0x100u;

namespace detail {

/// Layout contract for probe_group16: four consecutive 16-byte hash slots,
/// u64 key at offset 0, one-byte occupancy flag (0 = empty) at offset 12.
inline constexpr std::size_t kGroupSlotBytes = 16;
inline constexpr std::size_t kGroupSlots = 4;
inline constexpr std::size_t kGroupOccupiedOffset = 12;

inline std::uint32_t probe_group16_scalar(const unsigned char* bytes,
                                          std::uint64_t needle) {
  for (std::uint32_t lane = 0; lane < kGroupSlots; ++lane) {
    const unsigned char* slot = bytes + lane * kGroupSlotBytes;
    if (slot[kGroupOccupiedOffset] == 0) return lane;
    std::uint64_t key;
    __builtin_memcpy(&key, slot, sizeof(key));
    if (key == needle) return lane | kGroupMatchBit;
  }
  return kLaneNotFound;
}

std::uint32_t probe_group16_avx2(const unsigned char* bytes, std::uint64_t needle);

/// probe_run16 result flag (bit 0): the run ended on a key match. Clear
/// means the run ended at an empty slot — which in a linear-probe table is
/// exactly where an insert of the absent key would land, so one walk serves
/// lookup, insert and upsert alike.
inline constexpr std::uint64_t kRunMatch = 1;

/// Whole-run linear probe over 16-byte hash slots (layout contract above):
/// starting at `slot` in a power-of-two table of `mask + 1` slots, walks the
/// probe sequence until the key matches or an empty slot ends the run, and
/// returns (ending_slot << 1) | match_flag. One out-of-line call per
/// *lookup* — the tier dispatch and call overhead amortize over the whole
/// run instead of repeating per four-slot group, which is what makes the
/// AVX2 probe pay off at the short run lengths a 7/8-load table produces.
inline std::uint64_t probe_run16_scalar(const unsigned char* base, std::uint64_t mask,
                                        std::uint64_t slot, std::uint64_t needle) {
  for (;;) {
    const unsigned char* bytes = base + slot * kGroupSlotBytes;
    if (bytes[kGroupOccupiedOffset] == 0) return slot << 1;
    std::uint64_t key;
    __builtin_memcpy(&key, bytes, sizeof(key));
    if (key == needle) return (slot << 1) | kRunMatch;
    slot = (slot + 1) & mask;
  }
}

std::uint64_t probe_run16_avx2(const unsigned char* base, std::uint64_t mask,
                               std::uint64_t slot, std::uint64_t needle);

inline std::uint32_t find_first_equal_u64_scalar(const std::uint64_t* values,
                                                 std::uint32_t count,
                                                 std::uint64_t needle) {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (values[i] == needle) return i;
  }
  return kLaneNotFound;
}

std::uint32_t find_first_equal_u64_avx2(const std::uint64_t* values, std::uint32_t count,
                                        std::uint64_t needle);
std::uint32_t find_first_equal_u64_neon(const std::uint64_t* values, std::uint32_t count,
                                        std::uint64_t needle);

void mix_to_partial_tags_avx2(const std::uint64_t* tag_bits, std::uint64_t* out,
                              std::size_t count, std::uint32_t width_bits);
void mix_to_partial_tags_neon(const std::uint64_t* tag_bits, std::uint64_t* out,
                              std::size_t count, std::uint32_t width_bits);

std::size_t collect_masked_zero_avx2(const std::uint64_t* values, std::size_t count,
                                     std::uint64_t mask, std::uint32_t* out_indices);
std::size_t collect_masked_zero_neon(const std::uint64_t* values, std::size_t count,
                                     std::uint64_t mask, std::uint32_t* out_indices);

/// Scalar reference for mu_scan. The float op sequence per lane —
/// B = total - prefix[clamped], removed = A - B, removed / n — must match
/// partition::marginal_utility over msa::MissRatioCurve::miss_count exactly;
/// every vector tier replays the identical per-lane IEEE ops (sub, sub,
/// div are correctly rounded and width-independent), so results are
/// bit-identical across tiers.
inline void mu_scan_scalar(const double* prefix_hits, std::size_t size, double total,
                           std::uint32_t current, std::uint32_t max_extra,
                           double* out) {
  const double base =
      (current == 0 || size == 0)
          ? total
          : total - prefix_hits[(current < size ? current : size) - 1];
  for (std::uint32_t n = 1; n <= max_extra; ++n) {
    const std::uint32_t w = current + n;
    const double at_w =
        size == 0 ? total : total - prefix_hits[(w < size ? w : size) - 1];
    out[n - 1] = (base - at_w) / static_cast<double>(n);
  }
}

void mu_scan_avx2(const double* prefix_hits, std::size_t size, double total,
                  std::uint32_t current, std::uint32_t max_extra, double* out);

/// Scalar reference for miss_counts: out[i] = projected miss count of lane
/// i's curve at ways[i], the clamped-prefix lookup of
/// msa::MissRatioCurve::miss_count in struct-of-arrays form.
inline void miss_counts_scalar(const double* const* prefixes,
                               const std::uint32_t* sizes, const double* totals,
                               const std::uint32_t* ways, std::size_t count,
                               double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    if (ways[i] == 0 || sizes[i] == 0) {
      out[i] = totals[i];
    } else {
      const std::uint32_t idx = (ways[i] < sizes[i] ? ways[i] : sizes[i]) - 1;
      out[i] = totals[i] - prefixes[i][idx];
    }
  }
}

void miss_counts_avx2(const double* const* prefixes, const std::uint32_t* sizes,
                      const double* totals, const std::uint32_t* ways,
                      std::size_t count, double* out);

}  // namespace detail

/// First index i < count with values[i] == needle, else kLaneNotFound.
/// The equality scan under every tag-column probe (SetAssocCache sets,
/// StackProfiler stacks): contiguous 64-bit entries, first match wins.
inline std::uint32_t find_first_equal_u64(const std::uint64_t* values,
                                          std::uint32_t count, std::uint64_t needle) {
  switch (active_tier()) {
    case Tier::Avx2:
      if (count >= 4) return detail::find_first_equal_u64_avx2(values, count, needle);
      break;
    case Tier::Neon:
      if (count >= 4) return detail::find_first_equal_u64_neon(values, count, needle);
      break;
    case Tier::Scalar: break;
  }
  return detail::find_first_equal_u64_scalar(values, count, needle);
}

/// Probes four consecutive 16-byte hash slots (layout per
/// detail::kGroupSlotBytes/kGroupOccupiedOffset) for `needle` in
/// linear-probe order. Returns the lane (0-3) of the first match-or-empty
/// event — kGroupMatchBit set when the event is an occupied slot whose key
/// equals `needle` — or kLaneNotFound when all four slots are occupied by
/// other keys (the probe run continues past the group).
inline std::uint32_t probe_group16(const void* slots, std::uint64_t needle) {
  const auto* bytes = static_cast<const unsigned char*>(slots);
  if (active_tier() == Tier::Avx2) return detail::probe_group16_avx2(bytes, needle);
  return detail::probe_group16_scalar(bytes, needle);
}

/// Batched Fibonacci partial-tag mix: out[i] = (tag_bits[i] * K) >> (64 -
/// width_bits), the vector form of cache::partial_tag over a whole
/// AccessBatch. width_bits must be in [1, 32]; results are the zero-extended
/// 64-bit entries the profiler stacks store.
void mix_to_partial_tags(const std::uint64_t* tag_bits, std::uint64_t* out,
                         std::size_t count, std::uint32_t width_bits);

/// Batched sampling-mask resolve: appends to out_indices every index i with
/// (values[i] & mask) == 0 (ascending), returning how many matched. This is
/// the profiler's pow2 "is this set sampled?" test hoisted across a batch:
/// with num_sets and set_sampling both powers of two, sampled-set membership
/// is one AND against (set_mask & sample_mask). out_indices must have room
/// for count entries.
std::size_t collect_masked_zero(const std::uint64_t* values, std::size_t count,
                                std::uint64_t mask, std::uint32_t* out_indices);

/// Marginal-utility lookahead scan over one miss-ratio curve (the inner
/// kernel of the analytic allocation search): fills out[n-1] with
/// MU(current, n) = (miss(current) - miss(current + n)) / n for n in
/// [1, max_extra], where miss(w) = total - prefix_hits[min(w, size) - 1]
/// (miss(0) = total). `prefix_hits`/`size`/`total` are the raw curve
/// representation (msa::MissRatioCurve::prefix_hits()/total()). Division by
/// the true n is preserved — no reciprocal tricks — so each lane is the
/// bit-identical value partition::marginal_utility computes; the argmax
/// over the buffer stays with the caller, in index order.
inline void mu_scan(const double* prefix_hits, std::size_t size, double total,
                    std::uint32_t current, std::uint32_t max_extra, double* out) {
  if (max_extra == 0) return;
  switch (active_tier()) {
    case Tier::Avx2:
      if (max_extra >= 4) {
        detail::mu_scan_avx2(prefix_hits, size, total, current, max_extra, out);
        return;
      }
      break;
    case Tier::Neon: break;  // per-lane divides dominate; scalar is honest
    case Tier::Scalar: break;
  }
  detail::mu_scan_scalar(prefix_hits, size, total, current, max_extra, out);
}

/// Batched clamped-prefix miss-count lookup (partition::projected_total_
/// misses): out[i] = totals[i] - prefixes[i][min(ways[i], sizes[i]) - 1],
/// or totals[i] when lane i has zero ways or an empty curve. Lanes are
/// independent — the caller keeps its in-order summation, which is the
/// determinism contract on every projected-miss artifact.
inline void miss_counts(const double* const* prefixes, const std::uint32_t* sizes,
                        const double* totals, const std::uint32_t* ways,
                        std::size_t count, double* out) {
  switch (active_tier()) {
    case Tier::Avx2:
      if (count >= 4) {
        detail::miss_counts_avx2(prefixes, sizes, totals, ways, count, out);
        return;
      }
      break;
    case Tier::Neon: break;  // gather-dominated; scalar is honest
    case Tier::Scalar: break;
  }
  detail::miss_counts_scalar(prefixes, sizes, totals, ways, count, out);
}

/// Software prefetch hints (no-ops where unsupported). The batched access
/// pipeline's main lever: the DNUCA residency table is tens of megabytes,
/// so resolving its probe addresses a whole batch ahead turns dependent
/// cache misses into overlapped ones.
inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, 0, 3);
#else
  (void)address;
#endif
}

inline void prefetch_write(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, 1, 3);
#else
  (void)address;
#endif
}

}  // namespace bacp::common::simd
