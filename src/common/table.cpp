#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace bacp::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BACP_ASSERT(!header_.empty(), "table needs at least one column");
}

Table& Table::begin_row() {
  if (!rows_.empty()) {
    BACP_ASSERT(rows_.back().size() == header_.size(),
                "previous row not fully populated");
  }
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add_cell(std::string value) {
  BACP_ASSERT(!rows_.empty(), "begin_row before add_cell");
  BACP_ASSERT(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

Table& Table::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell_text = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cell_text;
    }
    os << " |\n";
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace bacp::common
