#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bacp::common {

/// Minimal ASCII table / CSV writer used by the benchmark harness to print
/// paper-style rows. Cells are strings; numeric helpers format consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  Table& begin_row();
  Table& add_cell(std::string value);
  Table& add_cell(double value, int precision = 3);
  Table& add_cell(std::uint64_t value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  static std::string format_double(double value, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bacp::common
