#pragma once

#include <cstdint>
#include <limits>

namespace bacp {

/// Physical byte address. The simulator never dereferences addresses; they
/// are opaque identifiers with bit-field structure (tag / set index / block
/// offset) imposed by each cache level.
using Address = std::uint64_t;

/// Cache-block-granular address (Address >> log2(block size)).
using BlockAddress = std::uint64_t;

/// Simulated clock, in core cycles (4 GHz in the baseline configuration).
using Cycle = std::uint64_t;

/// Core identifier, 0..num_cores-1.
using CoreId = std::uint32_t;

/// Sentinel for "no core" (e.g. unallocated cache way).
inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/// Bitmask of cores, bit i == core i. 32 cores is ample for the 8-core
/// baseline and for scaling studies.
using CoreMask = std::uint32_t;

constexpr CoreMask core_bit(CoreId core) { return CoreMask{1} << core; }

/// Number of cache ways; way index within a set.
using WayCount = std::uint32_t;
using WayIndex = std::uint32_t;

/// Bank identifier within the DNUCA L2 (0..15 in the baseline).
using BankId = std::uint32_t;

inline constexpr BankId kInvalidBank = std::numeric_limits<BankId>::max();

/// True if x is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Floor log2. Precondition: x != 0.
constexpr std::uint32_t log2_floor(std::uint64_t x) {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace bacp
