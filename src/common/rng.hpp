#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace bacp::common {

/// SplitMix64: used only to expand seeds into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-period PRNG. Deterministic for a
/// given seed and stream id, so every experiment is exactly reproducible and
/// per-trial streams can be fanned out across threads without coordination.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x8A5CD789635D2DFFULL,
               std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (stream * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses bitmask rejection: unbiased and
  /// needs no 128-bit arithmetic. Precondition: bound != 0.
  std::uint64_t next_below(std::uint64_t bound) {
    BACP_DASSERT(bound != 0, "next_below requires a non-zero bound");
    if (bound == 1) return 0;
    const std::uint64_t mask = mask_for(bound - 1);
    while (true) {
      const std::uint64_t x = next_u64() & mask;
      if (x < bound) return x;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double probability_true) { return next_double() < probability_true; }

  /// The full generator state, for warm-state snapshots: a generator
  /// restored with set_state() produces the exact same stream the saved
  /// generator would have continued with.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// Smallest all-ones mask covering x (x != 0 path handled by caller).
  static constexpr std::uint64_t mask_for(std::uint64_t x) {
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x |= x >> 32;
    return x;
  }
  std::uint64_t state_[4]{};
};

/// Walker alias method: O(1) sampling from a fixed discrete distribution.
/// The synthetic trace generators draw a stack distance per L2 access, so
/// this is the hottest sampling path in the simulator.
class DiscreteSampler {
 public:
  DiscreteSampler() = default;

  /// Builds the alias table from (possibly unnormalized) non-negative
  /// weights. Zero-weight entries are never drawn.
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draws an index in [0, size()). Precondition: non-empty with
  /// positive total weight.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return probability_.size(); }
  bool empty() const { return probability_.empty(); }

  /// Normalized probability of index i (for testing / reporting).
  double probability_of(std::size_t i) const { return normalized_.at(i); }

 private:
  std::vector<double> probability_;   // alias-table acceptance probabilities
  std::vector<std::uint32_t> alias_;  // alias targets
  std::vector<double> normalized_;    // normalized input distribution
};

}  // namespace bacp::common
