#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace bacp::common {

/// Fixed-size worker pool. The Monte-Carlo harness fans independent trials
/// out over it; each trial owns a deterministic per-trial RNG stream so the
/// results are identical for any worker count.
///
/// Concurrency contract (checked by clang -Wthread-safety): `mutex_` guards
/// the task queue and the shutdown flag; workers and submitters touch them
/// only under MutexLock. Task bodies run outside the lock.
class ThreadPool {
 public:
  /// num_threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count), partitioned across the pool, and
  /// blocks until all iterations complete. Exceptions in the body abort the
  /// program (simulation tasks are noexcept by design).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void submit(std::function<void()> task) BACP_EXCLUDES(mutex_);
  void worker_loop() BACP_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ BACP_GUARDED_BY(mutex_);
  CondVar task_available_;
  bool shutting_down_ BACP_GUARDED_BY(mutex_) = false;
};

}  // namespace bacp::common
