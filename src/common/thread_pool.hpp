#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bacp::common {

/// Fixed-size worker pool. The Monte-Carlo harness fans independent trials
/// out over it; each trial owns a deterministic per-trial RNG stream so the
/// results are identical for any worker count.
class ThreadPool {
 public:
  /// num_threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count), partitioned across the pool, and
  /// blocks until all iterations complete. Exceptions in the body abort the
  /// program (simulation tasks are noexcept by design).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool shutting_down_ = false;
};

}  // namespace bacp::common
