#include "common/stats.hpp"

#include <algorithm>
#include <sstream>

namespace bacp::common {

double geometric_mean(std::span<const double> values) {
  BACP_ASSERT(!values.empty(), "geometric_mean of an empty range");
  double log_sum = 0.0;
  for (double v : values) {
    BACP_ASSERT(v > 0.0, "geometric_mean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string GuardedGeomean::warning(double epsilon) const {
  if (clean()) return "";
  std::ostringstream oss;
  oss << "geometric mean clamped " << clamped << " of " << count
      << " non-positive value(s) up to " << epsilon;
  return oss.str();
}

GuardedGeomean guarded_geometric_mean(std::span<const double> values,
                                      double epsilon) {
  BACP_ASSERT(!values.empty(), "guarded_geometric_mean of an empty range");
  BACP_ASSERT(epsilon > 0.0, "guarded_geometric_mean epsilon must be positive");
  GuardedGeomean result;
  result.count = values.size();
  double log_sum = 0.0;
  for (double v : values) {
    if (!(v > 0.0)) {
      ++result.clamped;
      v = epsilon;
    }
    log_sum += std::log(std::max(v, epsilon));
  }
  result.value = std::exp(log_sum / static_cast<double>(values.size()));
  return result;
}

double arithmetic_mean(std::span<const double> values) {
  BACP_ASSERT(!values.empty(), "arithmetic_mean of an empty range");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile_sorted(std::span<const double> sorted, double p) {
  BACP_ASSERT(!sorted.empty(), "percentile of an empty range");
  BACP_ASSERT(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  BACP_DASSERT(std::is_sorted(sorted.begin(), sorted.end()),
               "percentile_sorted input must be ascending");
  const std::size_t n = sorted.size();
  if (n == 1) return sorted.front();
  // Linear interpolation between order statistics. The rank is clamped so
  // floating-point overshoot at p ~ 100 (p/100 * (n-1) landing an ulp past
  // n-1) can never index out of range or extrapolate past the max.
  const double rank =
      std::clamp(p / 100.0 * static_cast<double>(n - 1), 0.0,
                 static_cast<double>(n - 1));
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double p) {
  BACP_ASSERT(!values.empty(), "percentile of an empty range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

WeightedMeanCi weighted_mean_ci(std::span<const double> values,
                                std::span<const double> weights, double z) {
  BACP_ASSERT(!values.empty(), "weighted_mean_ci of an empty range");
  BACP_ASSERT(values.size() == weights.size(),
              "weighted_mean_ci spans must have equal length");
  BACP_ASSERT(z >= 0.0, "weighted_mean_ci z must be non-negative");
  double weight_sum = 0.0;
  double weight_sq_sum = 0.0;
  double weighted_value_sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    BACP_ASSERT(weights[i] >= 0.0, "weighted_mean_ci weights must be non-negative");
    weight_sum += weights[i];
    weight_sq_sum += weights[i] * weights[i];
    weighted_value_sum += weights[i] * values[i];
  }
  BACP_ASSERT(weight_sum > 0.0, "weighted_mean_ci needs positive total weight");

  WeightedMeanCi result;
  result.weight_total = weight_sum;
  result.mean = weighted_value_sum / weight_sum;

  // Reliability-weights (frequency-invariant) sample variance:
  //   s^2 = sum(w (x - mean)^2) / (W - W2/W),  SE = s * sqrt(W2) / W.
  // The denominator vanishes when all weight sits on one stratum; the
  // interval then degenerates to zero width rather than inventing spread.
  double weighted_sq_dev = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double dev = values[i] - result.mean;
    weighted_sq_dev += weights[i] * dev * dev;
  }
  const double denominator = weight_sum - weight_sq_sum / weight_sum;
  if (denominator > 0.0) {
    const double variance = weighted_sq_dev / denominator;
    result.std_error = std::sqrt(variance * weight_sq_sum) / weight_sum;
  }
  result.ci_half = z * result.std_error;
  return result;
}

}  // namespace bacp::common
