#include "common/stats.hpp"

#include <algorithm>

namespace bacp::common {

double geometric_mean(std::span<const double> values) {
  BACP_ASSERT(!values.empty(), "geometric_mean of an empty range");
  double log_sum = 0.0;
  for (double v : values) {
    BACP_ASSERT(v > 0.0, "geometric_mean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  BACP_ASSERT(!values.empty(), "arithmetic_mean of an empty range");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile(std::span<const double> values, double p) {
  BACP_ASSERT(!values.empty(), "percentile of an empty range");
  BACP_ASSERT(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace bacp::common
