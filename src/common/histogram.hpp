#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace bacp::common {

/// Dense integer histogram with saturating decay. The MSA profiler keeps one
/// counter per LRU stack position (Fig. 2 of the paper); the epoch controller
/// halves counters between epochs so stale phases age out.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::size_t num_bins) : bins_(num_bins, 0) {}

  void increment(std::size_t bin, std::uint64_t amount = 1) {
    BACP_DASSERT(bin < bins_.size(), "histogram bin out of range");
    bins_[bin] += amount;
    total_ += amount;
  }

  std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t total() const { return total_; }

  std::span<const std::uint64_t> bins() const { return bins_; }

  /// Exponential decay: halve every counter. Used at epoch boundaries so the
  /// profile tracks the current program phase rather than all history.
  void decay_halve() {
    total_ = 0;
    for (auto& b : bins_) {
      b >>= 1;
      total_ += b;
    }
  }

  void clear() {
    bins_.assign(bins_.size(), 0);
    total_ = 0;
  }

  /// Element-wise accumulate (bins must match).
  void accumulate(const Histogram& other) {
    BACP_ASSERT(bins_.size() == other.bins_.size(),
                "accumulating histograms of different sizes");
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    total_ += other.total_;
  }

  /// Normalized bin fractions (empty histogram -> all zeros).
  std::vector<double> normalized() const {
    std::vector<double> out(bins_.size(), 0.0);
    if (total_ == 0) return out;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      out[i] = static_cast<double>(bins_[i]) / static_cast<double>(total_);
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace bacp::common
