#pragma once

// Clang thread-safety analysis attributes (-Wthread-safety), spelled as
// BACP_* macros so annotated code still compiles as plain C++ on GCC (the
// attributes expand to nothing there). The clang CI leg compiles the
// annotated targets with -Wthread-safety -Werror, turning lock-discipline
// violations (touching a BACP_GUARDED_BY member without its mutex, calling
// a BACP_REQUIRES function unlocked, unbalanced acquire/release) into build
// failures instead of rare races.
//
// The annotation vocabulary follows the canonical Clang mutex.h reference:
//   BACP_CAPABILITY(name)      a lockable type (see common::Mutex)
//   BACP_SCOPED_CAPABILITY     an RAII lock holder (see common::MutexLock)
//   BACP_GUARDED_BY(m)         data member readable/writable only under m
//   BACP_PT_GUARDED_BY(m)      pointee guarded by m (the pointer itself not)
//   BACP_REQUIRES(m...)        function precondition: m held by the caller
//   BACP_ACQUIRE(m...)         function acquires m (held on return)
//   BACP_RELEASE(m...)         function releases m
//   BACP_TRY_ACQUIRE(b, m...)  acquires m iff the return value equals b
//   BACP_EXCLUDES(m...)        function precondition: m NOT held (deadlock)
//   BACP_RETURN_CAPABILITY(m)  function returns a reference to m
//   BACP_NO_THREAD_SAFETY_ANALYSIS  opt-out for one function, with a reason
//
// Annotation conventions for this repo are catalogued in DESIGN.md
// section 13 alongside the bacp-analyze static checks.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BACP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BACP_THREAD_ANNOTATION
#define BACP_THREAD_ANNOTATION(x)  // no-op: GCC and pre-capability clang
#endif

#define BACP_CAPABILITY(x) BACP_THREAD_ANNOTATION(capability(x))
#define BACP_SCOPED_CAPABILITY BACP_THREAD_ANNOTATION(scoped_lockable)
#define BACP_GUARDED_BY(x) BACP_THREAD_ANNOTATION(guarded_by(x))
#define BACP_PT_GUARDED_BY(x) BACP_THREAD_ANNOTATION(pt_guarded_by(x))
#define BACP_REQUIRES(...) BACP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BACP_ACQUIRE(...) BACP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BACP_RELEASE(...) BACP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BACP_TRY_ACQUIRE(...) BACP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BACP_EXCLUDES(...) BACP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BACP_RETURN_CAPABILITY(x) BACP_THREAD_ANNOTATION(lock_returned(x))
#define BACP_NO_THREAD_SAFETY_ANALYSIS \
  BACP_THREAD_ANNOTATION(no_thread_safety_analysis)
