#include "common/args.hpp"

#include <cstdlib>
#include <sstream>

namespace bacp::common {

ArgParser::ArgParser(std::vector<std::pair<std::string, std::string>> spec) {
  for (auto& [name, help_text] : spec) {
    Flag flag;
    flag.help_text = std::move(help_text);
    std::string key = name;
    if (!key.empty() && key.back() == '=') {
      key.pop_back();
      flag.takes_value = true;
    }
    spec_.emplace(std::move(key), std::move(flag));
  }
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      inline_value = key.substr(eq + 1);
      key = key.substr(0, eq);
    }
    const auto it = spec_.find(key);
    if (it == spec_.end()) {
      error_ = "unknown flag --" + key;
      return false;
    }
    if (!it->second.takes_value) {
      if (inline_value) {
        error_ = "flag --" + key + " does not take a value";
        return false;
      }
      values_[key] = "1";
      continue;
    }
    if (inline_value) {
      values_[key] = *inline_value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      error_ = "flag --" + key + " needs a value";
      return false;
    }
  }
  return true;
}

bool ArgParser::has(const std::string& name) const { return values_.count(name) != 0; }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& name, std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return value;
}

std::string ArgParser::help(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : spec_) {
    oss << "  --" << name << (flag.takes_value ? "=<value>" : "") << "\n      "
        << flag.help_text << '\n';
  }
  return oss.str();
}

}  // namespace bacp::common
