#include "common/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/parse.hpp"

namespace bacp::common {

ArgParser::ArgParser(std::vector<std::pair<std::string, std::string>> spec) {
  for (auto& [name, help_text] : spec) {
    Flag flag;
    flag.help_text = std::move(help_text);
    std::string key = name;
    if (!key.empty() && key.back() == '=') {
      key.pop_back();
      flag.takes_value = true;
    }
    spec_.emplace(std::move(key), std::move(flag));
  }
}

bool ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0 && argv[0] != nullptr && *argv[0] != '\0') program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      inline_value = key.substr(eq + 1);
      key = key.substr(0, eq);
    }
    const auto it = spec_.find(key);
    if (it == spec_.end()) {
      error_ = "unknown flag --" + key;
      return false;
    }
    if (!it->second.takes_value) {
      if (inline_value) {
        error_ = "flag --" + key + " does not take a value";
        return false;
      }
      values_[key] = "1";
      continue;
    }
    if (inline_value) {
      values_[key] = *inline_value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      error_ = "flag --" + key + " needs a value";
      return false;
    }
  }
  return true;
}

bool ArgParser::has(const std::string& name) const { return values_.count(name) != 0; }

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

void ArgParser::fatal_usage(const std::string& message) const {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(), help(program_).c_str());
  std::exit(2);
}

const std::string* ArgParser::raw_or_fatal_if_missing(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) fatal_usage("missing required flag --" + name);
  return &it->second;
}

namespace {

/// Composes the fatal-usage message for a malformed flag value.
std::string flag_error(const std::string& name, const std::string& raw,
                       const std::string& reason) {
  return "invalid value '" + raw + "' for --" + name + ": " + reason;
}

}  // namespace

std::uint64_t ArgParser::get_u64_or_fail(const std::string& name,
                                         std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto result = parse_u64(it->second);
  if (!result) fatal_usage(flag_error(name, it->second, result.error));
  return *result;
}

std::int64_t ArgParser::get_i64_or_fail(const std::string& name,
                                        std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto result = parse_i64(it->second);
  if (!result) fatal_usage(flag_error(name, it->second, result.error));
  return *result;
}

double ArgParser::get_double_or_fail(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto result = parse_double(it->second);
  if (!result) fatal_usage(flag_error(name, it->second, result.error));
  return *result;
}

bool ArgParser::get_bool_or_fail(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto result = parse_bool(it->second);
  if (!result) fatal_usage(flag_error(name, it->second, result.error));
  return *result;
}

std::uint64_t ArgParser::require_u64(const std::string& name) const {
  const std::string& raw = *raw_or_fatal_if_missing(name);
  const auto result = parse_u64(raw);
  if (!result) fatal_usage(flag_error(name, raw, result.error));
  return *result;
}

double ArgParser::require_double(const std::string& name) const {
  const std::string& raw = *raw_or_fatal_if_missing(name);
  const auto result = parse_double(raw);
  if (!result) fatal_usage(flag_error(name, raw, result.error));
  return *result;
}

std::string ArgParser::require_string(const std::string& name) const {
  return *raw_or_fatal_if_missing(name);
}

std::string ArgParser::help(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : spec_) {
    oss << "  --" << name << (flag.takes_value ? "=<value>" : "") << "\n      "
        << flag.help_text << '\n';
  }
  return oss.str();
}

}  // namespace bacp::common
