#include "common/rng.hpp"

#include <numeric>

namespace bacp::common {

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  BACP_ASSERT(n > 0, "DiscreteSampler requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    BACP_ASSERT(w >= 0.0, "DiscreteSampler weights must be non-negative");
    total += w;
  }
  BACP_ASSERT(total > 0.0, "DiscreteSampler requires positive total weight");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Standard Walker/Vose construction: partition scaled probabilities into
  // "small" (< 1) and "large" (>= 1) and pair each small cell with a large
  // donor.
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining cells are numerically == 1.
  for (std::uint32_t l : large) probability_[l] = 1.0;
  for (std::uint32_t s : small) probability_[s] = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  BACP_DASSERT(!probability_.empty(), "sampling from an empty distribution");
  const std::size_t column = rng.next_below(probability_.size());
  return rng.next_double() < probability_[column] ? column : alias_[column];
}

}  // namespace bacp::common
