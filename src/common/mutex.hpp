#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace bacp::common {

/// std::mutex with a capability annotation, so clang's -Wthread-safety can
/// check the lock discipline of BACP_GUARDED_BY members. libstdc++'s own
/// std::mutex / std::lock_guard carry no annotations and are invisible to
/// the analysis; every mutex-guarded structure in the repo uses this
/// wrapper plus MutexLock instead.
class BACP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BACP_ACQUIRE() { mutex_.lock(); }
  void unlock() BACP_RELEASE() { mutex_.unlock(); }
  bool try_lock() BACP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII scope lock over Mutex (the std::lock_guard shape, but visible to
/// the thread-safety analysis as a scoped capability).
class BACP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BACP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() BACP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mutex_;
};

/// Condition variable paired with Mutex/MutexLock. wait() is the one place
/// where a capability is released and reacquired behind the analysis's
/// back, so it alone is opted out — callers still hold the MutexLock
/// scope, and the lock is held again when wait() returns.
class CondVar {
 public:
  /// Atomically releases `lock`'s mutex and blocks; the mutex is reacquired
  /// before returning. Callers loop over their predicate as with any
  /// condition variable (spurious wakeups happen).
  void wait(MutexLock& lock) BACP_NO_THREAD_SAFETY_ANALYSIS {
    // Mutex is BasicLockable, so condition_variable_any unlocks/relocks it
    // directly; the MutexLock scope object stays conceptually "held".
    cv_.wait(lock.mutex_);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bacp::common
