#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace bacp::common {

/// Minimal std allocator that backs large allocations with 2 MiB-aligned
/// memory advised as transparent hugepages (Linux MADV_HUGEPAGE; elsewhere
/// it degrades to plain aligned allocation). The simulator's flat tables —
/// the DNUCA residency index above all — are multi-megabyte arrays probed
/// at random addresses: on 4 KiB pages nearly every probe is a second-level
/// dTLB miss, and x86 cores drop software prefetches whose address misses
/// the TLB, which silently defeats the batched pipeline's lookahead
/// entirely. One hugepage maps 2 MiB, so an 8 MiB table needs four dTLB
/// entries instead of two thousand and the prefetches actually issue.
/// THP in "madvise" mode requires this explicit advice; under "always" the
/// advice is redundant and under "never" it is ignored — all safe.
template <typename T>
struct HugePageAlloc {
  using value_type = T;
  static constexpr std::size_t kHugePage = std::size_t{2} << 20;

  HugePageAlloc() = default;
  template <typename U>
  HugePageAlloc(const HugePageAlloc<U>&) noexcept {}

  T* allocate(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    // Small tables stay on normal pages: rounding them up to 2 MiB would
    // waste more than they occupy.
    if (bytes >= kHugePage) {
      const std::size_t rounded = (bytes + kHugePage - 1) & ~(kHugePage - 1);
      void* raw = nullptr;
      if (posix_memalign(&raw, kHugePage, rounded) == 0) {
#if defined(__linux__)
        madvise(raw, rounded, MADV_HUGEPAGE);
#endif
        return static_cast<T*>(raw);
      }
    }
    const std::size_t alignment =
        alignof(T) > alignof(std::max_align_t) ? alignof(T) : alignof(std::max_align_t);
    void* raw = nullptr;
    if (posix_memalign(&raw, alignment, bytes == 0 ? alignment : bytes) != 0) {
      throw std::bad_alloc{};
    }
    return static_cast<T*>(raw);
  }

  void deallocate(T* ptr, std::size_t) noexcept { std::free(ptr); }

  friend bool operator==(const HugePageAlloc&, const HugePageAlloc&) { return true; }
  friend bool operator!=(const HugePageAlloc&, const HugePageAlloc&) { return false; }
};

}  // namespace bacp::common
