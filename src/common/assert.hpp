#pragma once

#include <cstdio>
#include <cstdlib>

// Invariant checking that stays on in release builds. Simulator correctness
// depends on structural invariants (LRU stack integrity, way-mask coverage,
// token conservation); a silent violation would corrupt every statistic
// downstream, so we always abort loudly rather than compile the checks out.
#define BACP_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "BACP_ASSERT failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// A disabled assertion must still *use* its condition without evaluating
// it, or parameters referenced only in assertions trip
// -Werror=unused-parameter in the compiled-out configurations. sizeof's
// operand is unevaluated, so this is free and has no side effects.
#define BACP_UNUSED_ASSERT(cond) ((void)sizeof((cond) ? 1 : 0))

// Cheaper checks in inner loops: enabled unless BACP_NDEBUG_FAST is defined.
#ifdef BACP_NDEBUG_FAST
#define BACP_DASSERT(cond, msg) BACP_UNUSED_ASSERT(cond)
#else
#define BACP_DASSERT(cond, msg) BACP_ASSERT(cond, msg)
#endif

// Expensive structural audits (whole-set probes, cross-structure scans)
// that would dominate the hot path they guard: enabled only in checked
// (non-NDEBUG) builds, which is where the unit and equivalence suites run.
#if defined(BACP_NDEBUG_FAST) || defined(NDEBUG)
#define BACP_SLOW_DASSERT(cond, msg) BACP_UNUSED_ASSERT(cond)
#else
#define BACP_SLOW_DASSERT(cond, msg) BACP_ASSERT(cond, msg)
#endif
