#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "snapshot/codec.hpp"

namespace bacp::snapshot {

/// One section per stateful subsystem of sim::System. Ids are stable
/// format constants: renumbering breaks every serialized snapshot.
enum class SectionId : std::uint32_t {
  SystemMeta = 1,  ///< mix, allocation, epoch counters, history
  Noc = 2,
  Dram = 3,
  Directory = 4,
  L2 = 5,
  L1 = 6,          ///< all per-core L1s, core order
  Generators = 7,  ///< all per-core trace generators, core order
  Profilers = 8,   ///< all per-core MSA profilers, core order
  Timers = 9,      ///< all per-core timers, core order
  Sched = 10,      ///< sched::Service tenant table and scheduler clocks
};

const char* to_string(SectionId id);

/// Format constants shared by the builder, the view and audit_snapshot.
/// Layout (all integers host-order):
///   [0]  magic   u64  "BACPSNAP"
///   [8]  version u32
///   [12] count   u32  number of sections
///   [16] digest  u64  config fingerprint of the producing system
///   [24] table   count x {id u32, pad u32, offset u64, length u64, checksum u64}
///   ...  payload  sections, contiguous, in table order
inline constexpr std::uint64_t kMagic = 0x50414E5350434142ull;  // "BACPSNAP"
// v2: section checksums switched from byte-serial FNV-1a to the
// word-at-a-time variant below. Banked v1 snapshots fail the version check
// and rewarm — the bank is a cache, so a version bump costs time, never
// correctness.
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kTableEntryBytes = 32;
inline constexpr std::size_t kMaxSections = 16;

/// Per-section integrity checksum: FNV-1a folding 8 bytes per multiply
/// (host-order words, byte-serial tail). The byte-serial chain caps at one
/// multiply per byte — under 1 GB/s on the reference host — and every
/// snapshot is checksummed on save, on bank load *and* on restore, so the
/// checksum was the dominant cost of a pooled sampled trial. The word
/// variant keeps the same mixing structure at 8x fewer multiplies; it is
/// format-internal (not FNV-compatible), which kVersion == 2 records.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/// A whole simulated system's warm state as one flat buffer. Value type:
/// copyable, shareable across threads once built (readers never mutate).
///
/// Two storage modes share one read interface, data():
///   - owned: `bytes` holds the buffer (SnapshotBuilder output, buffered
///     file loads). `backing` is null.
///   - mapped (zero-copy): `mapped` spans a memory-mapped snapshot-bank
///     file and `backing` shares ownership of the mapping, so copies of
///     the snapshot — and every SnapshotView/Reader derived from it — keep
///     the pages alive. Restore paths read sections straight out of the
///     page cache; the buffer is never copied into the heap. The backing
///     is type-erased (shared_ptr<const void>) so this header stays free
///     of filesystem dependencies; harness::SnapshotCache supplies a
///     common::MappedFile.
/// Readers MUST go through data() — a mapped snapshot's `bytes` is empty.
struct SystemSnapshot {
  std::vector<std::uint8_t> bytes;
  std::span<const std::uint8_t> mapped;
  std::shared_ptr<const void> backing;

  std::span<const std::uint8_t> data() const {
    return backing != nullptr ? mapped : std::span<const std::uint8_t>(bytes);
  }
  std::size_t size_bytes() const { return data().size(); }
};

/// Accumulates sections and assembles the final buffer. Sections must be
/// appended in strictly increasing SectionId order so identical state
/// always produces identical bytes.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(std::uint64_t config_digest)
      : config_digest_(config_digest) {
    // A begin_section() Writer points into sections_; pre-sizing keeps
    // every section slot stable while earlier Writers may still be live.
    sections_.reserve(kMaxSections);
  }

  /// Starts a section; write its payload through the returned Writer
  /// before the next begin_section()/finish() call.
  Writer begin_section(SectionId id);

  SystemSnapshot finish();

 private:
  struct Section {
    SectionId id;
    std::vector<std::uint8_t> payload;
  };

  std::uint64_t config_digest_;
  std::vector<Section> sections_;
};

/// Read-side accessor. Construction asserts structural validity (magic,
/// version, table bounds, checksums) — callers wanting a diagnosis instead
/// of an abort run audit::audit_snapshot first.
class SnapshotView {
 public:
  explicit SnapshotView(const SystemSnapshot& snapshot);

  std::uint64_t config_digest() const { return config_digest_; }

  bool has_section(SectionId id) const;

  /// Reader over one section's payload; asserts the section exists.
  Reader section(SectionId id) const;

 private:
  struct TableEntry {
    SectionId id;
    std::uint64_t offset;
    std::uint64_t length;
  };

  const SystemSnapshot* snapshot_;
  std::uint64_t config_digest_ = 0;
  std::vector<TableEntry> table_;
};

}  // namespace bacp::snapshot
