#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snapshot/codec.hpp"

namespace bacp::snapshot {

/// One section per stateful subsystem of sim::System. Ids are stable
/// format constants: renumbering breaks every serialized snapshot.
enum class SectionId : std::uint32_t {
  SystemMeta = 1,  ///< mix, allocation, epoch counters, history
  Noc = 2,
  Dram = 3,
  Directory = 4,
  L2 = 5,
  L1 = 6,          ///< all per-core L1s, core order
  Generators = 7,  ///< all per-core trace generators, core order
  Profilers = 8,   ///< all per-core MSA profilers, core order
  Timers = 9,      ///< all per-core timers, core order
  Sched = 10,      ///< sched::Service tenant table and scheduler clocks
};

const char* to_string(SectionId id);

/// Format constants shared by the builder, the view and audit_snapshot.
/// Layout (all integers host-order):
///   [0]  magic   u64  "BACPSNAP"
///   [8]  version u32
///   [12] count   u32  number of sections
///   [16] digest  u64  config fingerprint of the producing system
///   [24] table   count x {id u32, pad u32, offset u64, length u64, checksum u64}
///   ...  payload  sections, contiguous, in table order
inline constexpr std::uint64_t kMagic = 0x50414E5350434142ull;  // "BACPSNAP"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kTableEntryBytes = 32;
inline constexpr std::size_t kMaxSections = 16;

/// FNV-1a over a byte range; the per-section integrity checksum.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/// A whole simulated system's warm state as one flat buffer. Value type:
/// copyable, shareable across threads once built (readers never mutate).
struct SystemSnapshot {
  std::vector<std::uint8_t> bytes;

  std::size_t size_bytes() const { return bytes.size(); }
};

/// Accumulates sections and assembles the final buffer. Sections must be
/// appended in strictly increasing SectionId order so identical state
/// always produces identical bytes.
class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(std::uint64_t config_digest)
      : config_digest_(config_digest) {
    // A begin_section() Writer points into sections_; pre-sizing keeps
    // every section slot stable while earlier Writers may still be live.
    sections_.reserve(kMaxSections);
  }

  /// Starts a section; write its payload through the returned Writer
  /// before the next begin_section()/finish() call.
  Writer begin_section(SectionId id);

  SystemSnapshot finish();

 private:
  struct Section {
    SectionId id;
    std::vector<std::uint8_t> payload;
  };

  std::uint64_t config_digest_;
  std::vector<Section> sections_;
};

/// Read-side accessor. Construction asserts structural validity (magic,
/// version, table bounds, checksums) — callers wanting a diagnosis instead
/// of an abort run audit::audit_snapshot first.
class SnapshotView {
 public:
  explicit SnapshotView(const SystemSnapshot& snapshot);

  std::uint64_t config_digest() const { return config_digest_; }

  bool has_section(SectionId id) const;

  /// Reader over one section's payload; asserts the section exists.
  Reader section(SectionId id) const;

 private:
  struct TableEntry {
    SectionId id;
    std::uint64_t offset;
    std::uint64_t length;
  };

  const SystemSnapshot* snapshot_;
  std::uint64_t config_digest_ = 0;
  std::vector<TableEntry> table_;
};

}  // namespace bacp::snapshot
