#include "snapshot/snapshot.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace bacp::snapshot {

const char* to_string(SectionId id) {
  switch (id) {
    case SectionId::SystemMeta: return "system_meta";
    case SectionId::Noc: return "noc";
    case SectionId::Dram: return "dram";
    case SectionId::Directory: return "directory";
    case SectionId::L2: return "l2";
    case SectionId::L1: return "l1";
    case SectionId::Generators: return "generators";
    case SectionId::Profilers: return "profilers";
    case SectionId::Timers: return "timers";
    case SectionId::Sched: return "sched";
  }
  return "?";
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  // Word-at-a-time (see the header doc): one xor+multiply per 8 bytes, the
  // byte-serial chain only for the unaligned tail. memcpy keeps the word
  // loads legal on any alignment; host byte order is fine because snapshots
  // are host-order throughout.
  std::uint64_t hash = 0xCBF29CE484222325ull;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    hash = (hash ^ word) * 0x00000100000001B3ull;
  }
  for (; i < bytes.size(); ++i) {
    hash = (hash ^ bytes[i]) * 0x00000100000001B3ull;
  }
  return hash;
}

Writer SnapshotBuilder::begin_section(SectionId id) {
  BACP_ASSERT(sections_.size() < kMaxSections, "too many snapshot sections");
  BACP_ASSERT(sections_.empty() ||
                  static_cast<std::uint32_t>(sections_.back().id) <
                      static_cast<std::uint32_t>(id),
              "snapshot sections must be appended in increasing id order");
  sections_.push_back(Section{id, {}});
  return Writer(sections_.back().payload);
}

SystemSnapshot SnapshotBuilder::finish() {
  SystemSnapshot snapshot;
  std::size_t payload_bytes = 0;
  for (const Section& section : sections_) payload_bytes += section.payload.size();
  const std::size_t table_offset = kHeaderBytes;
  const std::size_t payload_offset =
      table_offset + sections_.size() * kTableEntryBytes;
  snapshot.bytes.reserve(payload_offset + payload_bytes);

  Writer header(snapshot.bytes);
  header.u64(kMagic);
  header.u32(kVersion);
  header.u32(static_cast<std::uint32_t>(sections_.size()));
  header.u64(config_digest_);

  std::uint64_t offset = payload_offset;
  for (const Section& section : sections_) {
    header.u32(static_cast<std::uint32_t>(section.id));
    header.u32(0);  // padding: keeps every table field naturally aligned
    header.u64(offset);
    header.u64(section.payload.size());
    header.u64(fnv1a(section.payload));
    offset += section.payload.size();
  }
  for (const Section& section : sections_) {
    if (section.payload.empty()) continue;
    const std::size_t at = snapshot.bytes.size();
    snapshot.bytes.resize(at + section.payload.size());
    std::memcpy(snapshot.bytes.data() + at, section.payload.data(),
                section.payload.size());
  }
  return snapshot;
}

SnapshotView::SnapshotView(const SystemSnapshot& snapshot) : snapshot_(&snapshot) {
  // data(): identical walk for owned and mapped snapshots — on a mapped
  // bank entry every assert below (including the per-section checksums)
  // validates against the mmap'd pages themselves, so a truncated or
  // bit-rotted map can never reach a restore path.
  const std::span<const std::uint8_t> bytes = snapshot.data();
  BACP_ASSERT(bytes.size() >= kHeaderBytes, "snapshot smaller than its header");
  Reader header(bytes);
  BACP_ASSERT(header.u64() == kMagic, "snapshot magic mismatch");
  BACP_ASSERT(header.u32() == kVersion, "snapshot version mismatch");
  const std::uint32_t count = header.u32();
  config_digest_ = header.u64();
  BACP_ASSERT(bytes.size() >= kHeaderBytes + std::size_t{count} * kTableEntryBytes,
              "snapshot section table overruns the buffer");
  table_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TableEntry entry;
    entry.id = static_cast<SectionId>(header.u32());
    (void)header.u32();  // padding
    entry.offset = header.u64();
    entry.length = header.u64();
    const std::uint64_t checksum = header.u64();
    BACP_ASSERT(entry.offset <= bytes.size() &&
                    entry.length <= bytes.size() - entry.offset,
                "snapshot section outside the buffer");
    const std::span<const std::uint8_t> payload(bytes.data() + entry.offset,
                                                entry.length);
    BACP_ASSERT(fnv1a(payload) == checksum, "snapshot section checksum mismatch");
    table_.push_back(entry);
  }
}

bool SnapshotView::has_section(SectionId id) const {
  for (const TableEntry& entry : table_) {
    if (entry.id == id) return true;
  }
  return false;
}

Reader SnapshotView::section(SectionId id) const {
  for (const TableEntry& entry : table_) {
    if (entry.id == id) {
      // subspan of data(): on a mapped snapshot this Reader walks the
      // mmap'd pages directly — the zero-copy restore path.
      return Reader(snapshot_->data().subspan(entry.offset, entry.length));
    }
  }
  BACP_ASSERT(false, "snapshot section missing");
  return Reader({});
}

}  // namespace bacp::snapshot
