#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace bacp::snapshot {

/// Scalar types the codec moves in bulk. Restricting to fixed-width
/// arithmetic scalars (never structs) keeps padding bytes out of the
/// byte stream, so two snapshots of identical state are identical byte
/// sequences — the property the canonical-bytes tests and the per-section
/// checksums rest on.
template <typename T>
concept CodecScalar = std::is_arithmetic_v<T> && std::has_unique_object_representations_v<T>;

/// Append-only byte sink for one snapshot section. Scalars are written in
/// host byte order (snapshots are an in-process warm-state transport, not
/// an interchange format); doubles travel as their raw 64-bit patterns so
/// restore is bit-exact.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t value) { raw(&value, sizeof(value)); }
  void u16(std::uint16_t value) { raw(&value, sizeof(value)); }
  void u32(std::uint32_t value) { raw(&value, sizeof(value)); }
  void u64(std::uint64_t value) { raw(&value, sizeof(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  /// Length-prefixed scalar array (the length doubles as a shape check on
  /// restore).
  template <CodecScalar T>
  void scalars(std::span<const T> values) {
    u64(values.size());
    raw(values.data(), values.size() * sizeof(T));
  }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view value) {
    u64(value.size());
    raw(value.data(), value.size());
  }

 private:
  void raw(const void* data, std::size_t bytes) {
    // resize + memcpy, not insert(): GCC 12's -Wstringop-overflow misfires
    // on byte-vector range inserts from raw pointers at -O3.
    if (bytes == 0) return;  // empty spans may carry a null data pointer
    const std::size_t offset = out_->size();
    out_->resize(offset + bytes);
    std::memcpy(out_->data() + offset, data, bytes);
  }

  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked cursor over one snapshot section. Underrun or a shape
/// mismatch aborts via BACP_ASSERT: restore_state() is only handed buffers
/// that audit_snapshot() (the graceful validator) or the producing
/// save_state() vouch for, so a malformed read here is a program bug, not
/// an input error.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Reads a scalar array written by Writer::scalars into `values`,
  /// asserting the stored length matches `values.size()` (component
  /// geometry fixes every array shape, so a mismatch means the snapshot
  /// belongs to a different configuration).
  template <CodecScalar T>
  void scalars_into(std::span<T> values) {
    const std::uint64_t count = u64();
    BACP_ASSERT(count == values.size(), "snapshot array length mismatch");
    raw(values.data(), values.size() * sizeof(T));
  }

  /// Reads a scalar array of stored length (for arrays whose size is data,
  /// e.g. the allocation history).
  template <CodecScalar T>
  std::vector<T> scalars() {
    const std::uint64_t count = u64();
    BACP_ASSERT(count <= remaining() / sizeof(T), "snapshot array overruns section");
    std::vector<T> values(static_cast<std::size_t>(count));
    raw(values.data(), values.size() * sizeof(T));
    return values;
  }

  std::string str() {
    const std::uint64_t count = u64();
    BACP_ASSERT(count <= remaining(), "snapshot string overruns section");
    std::string value(static_cast<std::size_t>(count), '\0');
    raw(value.data(), value.size());
    return value;
  }

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  T take() {
    T value;
    raw(&value, sizeof(T));
    return value;
  }

  void raw(void* data, std::size_t bytes) {
    BACP_ASSERT(bytes <= remaining(), "snapshot section underrun");
    std::memcpy(data, bytes_.data() + cursor_, bytes);
    cursor_ += bytes;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace bacp::snapshot
