#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace bacp::trace {

/// One temporal-reuse pool of a workload model, in one of two shapes:
///
///  - *mixed* (cyclic = false): stack distances uniform over [1, d] — a
///    "working-set plateau". With `c` dedicated ways the surviving hit
///    fraction is w * min(c, d) / d: piecewise-linear miss curves.
///  - *loop*  (cyclic = true): every access lands at stack distance exactly
///    d — a cyclic sweep over d blocks per set, the dominant reuse shape of
///    SPEC loop nests. Under LRU this is all-or-nothing: 100% hits when the
///    allocation reaches d, 0% below it. This is the cliff visible in the
///    paper's Fig. 3 (sixtrack "close to zero" past ~6 ways, applu flat
///    past ~10), and it is what makes unpartitioned sharing destructive:
///    interference that pushes a loop past the effective reach costs every
///    one of its hits, not a linear fraction.
struct ReuseComponent {
  double weight = 0.0;    ///< fraction of L2 accesses drawn from this pool
  WayCount depth = 1;     ///< deepest stack distance the pool re-touches
  bool cyclic = false;    ///< true: point mass at `depth` (loop); false: uniform
};

/// A synthetic workload: the L2-visible behaviour of one SPEC CPU2000
/// component, reduced to exactly the quantities the paper's machinery
/// consumes (stack-distance structure) plus the timing-side parameters the
/// CPI model needs.
///
/// Invariant: sum(component weights) + cold_fraction == 1 (validated).
struct WorkloadModel {
  std::string name;

  /// Temporal reuse structure of the L2 reference stream.
  std::vector<ReuseComponent> components;

  /// Fraction of L2 accesses that are compulsory/streaming misses — they
  /// never hit regardless of allocated capacity (beyond-LRU-depth accesses).
  double cold_fraction = 0.0;

  /// L2 accesses (i.e. L1 misses) per 1000 committed instructions.
  double l2_apki = 10.0;

  /// Fraction of all memory instructions that hit in L1 (modelled as MRU
  /// re-references; they do not perturb the L2 stream).
  double l1_hit_rate = 0.95;

  /// Fraction of L2 accesses that are stores.
  double write_fraction = 0.3;

  /// CPI of the core when every L2 access hits in the nearest bank: captures
  /// the non-memory pipeline behaviour of the workload.
  double base_cpi = 0.7;

  /// Average number of overlappable outstanding L2 misses (memory-level
  /// parallelism); bounds how much miss latency the OoO core hides.
  double mlp = 2.0;

  /// --- Analytic projections -------------------------------------------

  /// Miss ratio of this workload's L2 stream given `ways` dedicated ways of
  /// the 128-way-equivalent cache (Section III-A of the paper: MSA
  /// inclusion-property projection, here evaluated on the model itself).
  double miss_ratio(WayCount ways) const;

  /// Stack-distance probability weights for depths 1..max_depth followed by
  /// one bin for cold/beyond-depth accesses (size max_depth + 1). This is
  /// what the synthetic generator samples from and what a converged MSA
  /// histogram must match.
  std::vector<double> stack_distance_weights(WayCount max_depth) const;

  /// Validates invariants; aborts on violation. Called by the registry.
  void validate() const;
};

}  // namespace bacp::trace
