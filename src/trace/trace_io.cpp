#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>

namespace bacp::trace {

namespace {

constexpr std::uint64_t kHeaderBytes = sizeof(kTraceMagic) + 8;  // magic + count
constexpr std::uint64_t kRecordBytes = 9;  // block (u64) + flags (u8)
constexpr unsigned kReservedFlagBits = 0x60u;  // bits 5..6 must be zero

void put_u64(std::ofstream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  out.write(bytes, 8);
}

bool get_u64(std::ifstream& in, std::uint64_t& value) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return true;
}

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool write_trace(const std::string& path, std::span<const MemoryAccess> accesses,
                 std::string* error) {
  // Validate before the file is opened (and truncated): a trace that cannot
  // round-trip must not clobber an existing good one.
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (accesses[i].core > kTraceMaxCore) {
      return set_error(error, "core " + std::to_string(accesses[i].core) +
                                  " at record " + std::to_string(i) +
                                  " does not fit the 5-bit core field (max " +
                                  std::to_string(kTraceMaxCore) + ")");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return set_error(error, "cannot open '" + path + "' for writing");
  out.write(kTraceMagic, sizeof(kTraceMagic));
  put_u64(out, accesses.size());
  for (const auto& access : accesses) {
    put_u64(out, access.block);
    const auto flags =
        static_cast<char>((access.is_write ? 0x80u : 0u) | (access.core & 0x1Fu));
    out.write(&flags, 1);
  }
  if (!out) return set_error(error, "I/O failure writing '" + path + "'");
  return true;
}

std::optional<std::vector<MemoryAccess>> read_trace(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end_pos = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end_pos < 0 || static_cast<std::uint64_t>(end_pos) < kHeaderBytes) {
    set_error(error, "file is shorter than the " + std::to_string(kHeaderBytes) +
                         "-byte header");
    return std::nullopt;
  }
  const std::uint64_t payload_bytes = static_cast<std::uint64_t>(end_pos) - kHeaderBytes;

  char magic[sizeof(kTraceMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    set_error(error, "bad magic (not a BACPTRC1 trace)");
    return std::nullopt;
  }
  std::uint64_t count = 0;
  if (!get_u64(in, count)) {
    set_error(error, "truncated header");
    return std::nullopt;
  }
  // Never trust the header count before checking it against the bytes that
  // are actually present: a corrupt count would otherwise drive reserve()
  // into a huge allocation long before EOF fails the record loop.
  if (count != payload_bytes / kRecordBytes || count * kRecordBytes != payload_bytes) {
    set_error(error, "header claims " + std::to_string(count) + " records but " +
                         std::to_string(payload_bytes) +
                         " payload bytes are present (expected " +
                         std::to_string(count * kRecordBytes) + ")");
    return std::nullopt;
  }

  std::vector<MemoryAccess> accesses;
  accesses.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MemoryAccess access;
    if (!get_u64(in, access.block)) {
      set_error(error, "truncated record " + std::to_string(i));
      return std::nullopt;
    }
    char flags = 0;
    if (!in.read(&flags, 1)) {
      set_error(error, "truncated record " + std::to_string(i));
      return std::nullopt;
    }
    const auto bits = static_cast<unsigned char>(flags);
    if ((bits & kReservedFlagBits) != 0) {
      set_error(error, "reserved flag bits set in record " + std::to_string(i) +
                           " (corrupt file?)");
      return std::nullopt;
    }
    access.is_write = (bits & 0x80u) != 0;
    access.core = bits & 0x1Fu;
    accesses.push_back(access);
  }
  return accesses;
}

}  // namespace bacp::trace
