#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>

namespace bacp::trace {

namespace {

void put_u64(std::ofstream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  out.write(bytes, 8);
}

bool get_u64(std::ifstream& in, std::uint64_t& value) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return true;
}

}  // namespace

bool write_trace(const std::string& path, std::span<const MemoryAccess> accesses) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kTraceMagic, sizeof(kTraceMagic));
  put_u64(out, accesses.size());
  for (const auto& access : accesses) {
    put_u64(out, access.block);
    const auto flags = static_cast<char>((access.is_write ? 0x80u : 0u) |
                                         (access.core & 0x1Fu));
    out.write(&flags, 1);
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<MemoryAccess>> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[sizeof(kTraceMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }
  std::uint64_t count = 0;
  if (!get_u64(in, count)) return std::nullopt;

  std::vector<MemoryAccess> accesses;
  accesses.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MemoryAccess access;
    if (!get_u64(in, access.block)) return std::nullopt;
    char flags = 0;
    if (!in.read(&flags, 1)) return std::nullopt;
    const auto bits = static_cast<unsigned char>(flags);
    access.is_write = (bits & 0x80u) != 0;
    access.core = bits & 0x1Fu;
    accesses.push_back(access);
  }
  return accesses;
}

}  // namespace bacp::trace
