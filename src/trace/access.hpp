#pragma once

#include "common/types.hpp"

namespace bacp::trace {

/// One memory reference at cache-block granularity. The simulator operates
/// on block addresses throughout; byte offsets within a block never affect
/// hit/miss behaviour or timing in the modelled hierarchy.
struct MemoryAccess {
  BlockAddress block = 0;
  CoreId core = 0;
  bool is_write = false;
};

}  // namespace bacp::trace
