#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace bacp::trace {

/// One memory reference at cache-block granularity. The simulator operates
/// on block addresses throughout; byte offsets within a block never affect
/// hit/miss behaviour or timing in the modelled hierarchy.
struct MemoryAccess {
  BlockAddress block = 0;
  CoreId core = 0;
  bool is_write = false;
};

/// A fixed-capacity run of consecutive accesses from one stream — the unit
/// the batched pipeline operates on. Produced by
/// SyntheticTraceGenerator::next_batch() and consumed front-to-back; the
/// generator can rewind an unconsumed suffix (truncate_batch), so batching
/// is invisible to simulated state. Sized so a full batch of blocks (2 KiB)
/// plus the derived per-lane columns stays L1-resident.
struct AccessBatch {
  static constexpr std::uint32_t kMaxSize = 256;
  std::array<MemoryAccess, kMaxSize> accesses{};
  std::uint32_t size = 0;
};

}  // namespace bacp::trace
