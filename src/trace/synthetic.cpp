#include "trace/synthetic.hpp"

#include "common/assert.hpp"

namespace bacp::trace {

SyntheticTraceGenerator::SyntheticTraceGenerator(const WorkloadModel& model,
                                                 const GeneratorConfig& config,
                                                 std::uint64_t seed)
    : model_(&model),
      config_(config),
      rng_(seed, config.core),
      recency_(config.num_sets) {
  BACP_ASSERT(config_.num_sets > 0, "generator needs at least one set");
  BACP_ASSERT(config_.max_depth >= 1, "generator needs max_depth >= 1");
  const auto weights = model.stack_distance_weights(config_.max_depth);
  depth_sampler_ = common::DiscreteSampler(weights);
  for (auto& list : recency_) list.reserve(config_.max_depth);
}

BlockAddress SyntheticTraceGenerator::fresh_block(std::uint32_t set) {
  // Layout: | core (8b) | unique id | set index |. The low bits carry the
  // set so the simulated L2's index function places the block exactly where
  // the generator's recency bookkeeping assumes it lives.
  const std::uint64_t id = next_block_id_++;
  const auto set_bits = log2_floor(config_.num_sets);
  BACP_DASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  return (static_cast<std::uint64_t>(config_.core) << 52) | (id << set_bits) |
         static_cast<std::uint64_t>(set);
}

void SyntheticTraceGenerator::switch_model(const WorkloadModel& model) {
  model.validate();
  model_ = &model;
  depth_sampler_ =
      common::DiscreteSampler(model.stack_distance_weights(config_.max_depth));
}

MemoryAccess SyntheticTraceGenerator::next() {
  const auto set = static_cast<std::uint32_t>(rng_.next_below(config_.num_sets));
  auto& list = recency_[set];

  const std::size_t depth_bin = depth_sampler_.sample(rng_);
  // depth_bin in [0, max_depth-1] => stack distance depth_bin + 1;
  // depth_bin == max_depth      => cold / beyond-depth access.
  BlockAddress block;
  if (depth_bin >= config_.max_depth || depth_bin >= list.size()) {
    block = fresh_block(set);
    list.insert(list.begin(), block);
    if (list.size() > config_.max_depth) list.pop_back();
  } else {
    const auto it = list.begin() + static_cast<std::ptrdiff_t>(depth_bin);
    block = *it;
    list.erase(it);
    list.insert(list.begin(), block);
  }

  MemoryAccess access;
  access.block = block;
  access.core = config_.core;
  access.is_write = rng_.next_bool(model_->write_fraction);
  return access;
}

}  // namespace bacp::trace
