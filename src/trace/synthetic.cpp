#include "trace/synthetic.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <span>
#include <string>

#include "common/assert.hpp"
#include "snapshot/codec.hpp"
#include "trace/spec2000.hpp"

namespace bacp::trace {

SyntheticTraceGenerator::SyntheticTraceGenerator(const WorkloadModel& model,
                                                 const GeneratorConfig& config,
                                                 std::uint64_t seed)
    : model_(&model),
      config_(config),
      rng_(seed, config.core),
      ring_capacity_(std::bit_ceil(std::uint32_t{config.max_depth})),
      ring_mask_(ring_capacity_ - 1) {
  BACP_ASSERT(config_.num_sets > 0, "generator needs at least one set");
  BACP_ASSERT(config_.max_depth >= 1, "generator needs max_depth >= 1");
  recency_entries_.assign(std::size_t{config_.num_sets} * ring_capacity_, 0);
  recency_heads_.assign(config_.num_sets, 0);
  recency_sizes_.assign(config_.num_sets, 0);
  const auto weights = model.stack_distance_weights(config_.max_depth);
  depth_sampler_ = common::DiscreteSampler(weights);
  undo_log_.reserve(AccessBatch::kMaxSize);
}

BlockAddress SyntheticTraceGenerator::fresh_block(std::uint32_t set) {
  // Layout: | core (8b) | unique id | set index |. The low bits carry the
  // set so the simulated L2's index function places the block exactly where
  // the generator's recency bookkeeping assumes it lives.
  const std::uint64_t id = next_block_id_++;
  const auto set_bits = log2_floor(config_.num_sets);
  BACP_DASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  return (static_cast<std::uint64_t>(config_.core) << 52) | (id << set_bits) |
         static_cast<std::uint64_t>(set);
}

void SyntheticTraceGenerator::switch_model(const WorkloadModel& model) {
  BACP_DASSERT(!live_batch_, "switch_model with an outstanding batch");
  model.validate();
  model_ = &model;
  depth_sampler_ =
      common::DiscreteSampler(model.stack_distance_weights(config_.max_depth));
}

void SyntheticTraceGenerator::reset_in_place(const WorkloadModel& model,
                                             std::uint64_t seed) {
  BACP_ASSERT(!live_batch_, "reset_in_place with an outstanding batch");
  model.validate();
  model_ = &model;
  rng_ = common::Rng(seed, config_.core);
  depth_sampler_ =
      common::DiscreteSampler(model.stack_distance_weights(config_.max_depth));
  std::fill(recency_entries_.begin(), recency_entries_.end(), 0);
  std::fill(recency_heads_.begin(), recency_heads_.end(), 0);
  std::fill(recency_sizes_.begin(), recency_sizes_.end(), 0);
  next_block_id_ = 0;
  undo_log_.clear();
  batch_rng_state_.fill(0);
  batch_start_block_id_ = 0;
}

template <bool Record>
MemoryAccess SyntheticTraceGenerator::produce() {
  const auto set = static_cast<std::uint32_t>(rng_.next_below(config_.num_sets));
  BlockAddress* ring = recency_entries_.data() + std::size_t{set} * ring_capacity_;
  std::uint32_t& head = recency_heads_[set];
  std::uint32_t& size = recency_sizes_[set];

  const std::size_t depth_bin = depth_sampler_.sample(rng_);
  // depth_bin in [0, max_depth-1] => stack distance depth_bin + 1;
  // depth_bin == max_depth      => cold / beyond-depth access.
  BlockAddress block;
  if (depth_bin >= config_.max_depth || depth_bin >= size) {
    // Fresh block enters at MRU by retreating the head one slot; once the
    // list is full the LRU tail falls out of the live window implicitly.
    if constexpr (Record) {
      undo_log_.push_back(
          UndoRecord{set, kUndoFresh, size, ring[(head - 1) & ring_mask_]});
    }
    block = fresh_block(set);
    head = (head - 1) & ring_mask_;
    ring[head] = block;
    size = std::min(size + 1, config_.max_depth);
  } else {
    // Re-touch at depth_bin: slide the depth_bin entries above it down one
    // slot and reinsert at MRU. One memmove when the stretch does not wrap.
    const std::uint32_t depth = static_cast<std::uint32_t>(depth_bin);
    if constexpr (Record) undo_log_.push_back(UndoRecord{set, depth, 0, 0});
    block = ring[(head + depth) & ring_mask_];
    if (head + depth < ring_capacity_) {
      std::memmove(ring + head + 1, ring + head, depth * sizeof(BlockAddress));
    } else {
      for (std::uint32_t i = depth; i > 0; --i) {
        ring[(head + i) & ring_mask_] = ring[(head + i - 1) & ring_mask_];
      }
    }
    ring[head] = block;
  }

  MemoryAccess access;
  access.block = block;
  access.core = config_.core;
  access.is_write = rng_.next_bool(model_->write_fraction);
  return access;
}

MemoryAccess SyntheticTraceGenerator::next() {
  BACP_DASSERT(!live_batch_, "scalar next() with an outstanding batch");
  return produce<false>();
}

void SyntheticTraceGenerator::next_batch(AccessBatch& batch, std::uint32_t n) {
  BACP_DASSERT(n >= 1 && n <= AccessBatch::kMaxSize, "batch size out of range");
  // Calling again while a batch is live means the caller fully consumed the
  // previous batch; its undo log is dead weight and is discarded here.
  undo_log_.clear();
  batch_rng_state_ = rng_.state();
  batch_start_block_id_ = next_block_id_;
  live_batch_ = true;
  for (std::uint32_t i = 0; i < n; ++i) batch.accesses[i] = produce<true>();
  batch.size = n;
}

void SyntheticTraceGenerator::undo(const UndoRecord& record) {
  BlockAddress* ring =
      recency_entries_.data() + std::size_t{record.set} * ring_capacity_;
  std::uint32_t& head = recency_heads_[record.set];
  if (record.depth == kUndoFresh) {
    // Inverse of a fresh insert: restore the slot's prior bytes (dead-slot
    // bytes included, keeping snapshots of rewound state byte-identical),
    // re-advance the head and restore the live count.
    ring[head] = record.overwritten;
    head = (head + 1) & ring_mask_;
    recency_sizes_[record.set] = record.old_size;
  } else {
    // Inverse rotation of a depth-d re-touch: the MRU slot's block returns
    // to depth d and the d entries above it slide back up one slot.
    const std::uint32_t depth = record.depth;
    const BlockAddress block = ring[head];
    if (head + depth < ring_capacity_) {
      std::memmove(ring + head, ring + head + 1, depth * sizeof(BlockAddress));
    } else {
      for (std::uint32_t i = 1; i <= depth; ++i) {
        ring[(head + i - 1) & ring_mask_] = ring[(head + i) & ring_mask_];
      }
    }
    ring[(head + depth) & ring_mask_] = block;
  }
}

void SyntheticTraceGenerator::truncate_batch(std::uint32_t consumed) {
  BACP_ASSERT(live_batch_, "truncate_batch without an outstanding batch");
  BACP_DASSERT(consumed <= undo_log_.size(), "consumed more than the batch held");
  // Rewind to the exact pre-batch state (rings, RNG, block counter), then
  // replay the consumed prefix scalar — landing precisely where `consumed`
  // next() calls would have.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) undo(*it);
  rng_.set_state(batch_rng_state_);
  next_block_id_ = batch_start_block_id_;
  undo_log_.clear();
  live_batch_ = false;
  for (std::uint32_t i = 0; i < consumed; ++i) (void)produce<false>();
}

void SyntheticTraceGenerator::save_state(snapshot::Writer& writer) const {
  BACP_DASSERT(!live_batch_, "save_state with an outstanding batch");
  writer.u32(config_.num_sets);
  writer.u32(config_.max_depth);
  writer.u32(config_.core);
  // The model is a non-owning pointer into the SPEC2000 registry, which
  // outlives every generator; the name is the stable identity.
  writer.str(model_->name);
  for (const std::uint64_t word : rng_.state()) writer.u64(word);
  writer.scalars(std::span<const BlockAddress>(recency_entries_));
  writer.scalars(std::span<const std::uint32_t>(recency_heads_));
  writer.scalars(std::span<const std::uint32_t>(recency_sizes_));
  writer.u64(next_block_id_);
}

void SyntheticTraceGenerator::restore_state(snapshot::Reader& reader) {
  BACP_DASSERT(!live_batch_, "restore_state with an outstanding batch");
  BACP_ASSERT(reader.u32() == config_.num_sets, "snapshot num_sets mismatch");
  BACP_ASSERT(reader.u32() == config_.max_depth, "snapshot max_depth mismatch");
  BACP_ASSERT(reader.u32() == config_.core, "snapshot core id mismatch");
  const std::string model_name = reader.str();
  if (model_name != model_->name) switch_model(spec2000_by_name(model_name));
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = reader.u64();
  rng_.set_state(rng_state);
  reader.scalars_into(std::span<BlockAddress>(recency_entries_));
  reader.scalars_into(std::span<std::uint32_t>(recency_heads_));
  reader.scalars_into(std::span<std::uint32_t>(recency_sizes_));
  next_block_id_ = reader.u64();
}

}  // namespace bacp::trace
