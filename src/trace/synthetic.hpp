#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trace/access.hpp"
#include "trace/workload_model.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::trace {

/// Geometry knobs for the synthetic stream. Defaults match the baseline L2
/// viewed as a 128-way-equivalent cache: 16 MB / 64 B / 128 ways = 2048 sets.
struct GeneratorConfig {
  std::uint32_t num_sets = 2048;  ///< per-set recency lists
  WayCount max_depth = 128;       ///< deepest modelled stack distance
  CoreId core = 0;                ///< stamped into produced accesses
};

/// Produces an L2 reference stream whose per-set LRU stack-distance
/// histogram converges to the workload model's distribution — by
/// construction, not by calibration:
///
///   1. pick a set uniformly at random;
///   2. sample a stack depth d from the model's distribution;
///   3. if d <= live blocks in that set, re-touch the d-th most recently
///      used block (and move it to MRU), else touch a fresh block.
///
/// Because the MSA profiler measures exactly these per-set LRU depths, the
/// profiler's histogram over the generated stream is a consistent estimator
/// of the model — the property the test suite verifies and the property the
/// paper's entire mechanism rests on.
class SyntheticTraceGenerator {
 public:
  SyntheticTraceGenerator(const WorkloadModel& model, const GeneratorConfig& config,
                          std::uint64_t seed);

  /// Next access in the stream. Never fails; streams are unbounded.
  MemoryAccess next();

  /// Switches the workload's reuse structure mid-stream (a program phase
  /// change): the stack-distance distribution and write mix follow the new
  /// model immediately, while the resident footprint (recency lists) stays
  /// — exactly like a real phase boundary, where the old data is still in
  /// memory but the reuse pattern over it changes.
  void switch_model(const WorkloadModel& model);

  const WorkloadModel& model() const { return *model_; }
  const GeneratorConfig& config() const { return config_; }

  /// Number of distinct blocks ever touched (footprint so far).
  std::uint64_t blocks_allocated() const { return next_block_id_; }

  /// Serializes the model name, RNG state, recency rings and block counter.
  /// Restore asserts the geometry echo and re-resolves the model by name
  /// from the SPEC2000 registry (the sampler is rebuilt deterministically).
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  BlockAddress fresh_block(std::uint32_t set);

  const WorkloadModel* model_;  // non-owning; registry outlives generators
  GeneratorConfig config_;
  common::Rng rng_;
  common::DiscreteSampler depth_sampler_;
  // Per-set MRU-first recency lists stored as ring buffers in one flat
  // array (set s owns the ring_capacity_-sized stride starting at
  // s * ring_capacity_; logical depth d lives at (head + d) & ring_mask_).
  // A cold insert is head-decrement + one store instead of shifting the
  // whole list; a depth-d re-touch shifts only the d entries above it.
  std::vector<BlockAddress> recency_entries_;
  std::vector<std::uint32_t> recency_heads_;
  std::vector<std::uint32_t> recency_sizes_;
  std::uint32_t ring_capacity_ = 0;  ///< bit_ceil(max_depth)
  std::uint32_t ring_mask_ = 0;
  std::uint64_t next_block_id_ = 0;
};

}  // namespace bacp::trace
