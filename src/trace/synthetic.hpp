#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trace/access.hpp"
#include "trace/workload_model.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::trace {

/// Geometry knobs for the synthetic stream. Defaults match the baseline L2
/// viewed as a 128-way-equivalent cache: 16 MB / 64 B / 128 ways = 2048 sets.
struct GeneratorConfig {
  std::uint32_t num_sets = 2048;  ///< per-set recency lists
  WayCount max_depth = 128;       ///< deepest modelled stack distance
  CoreId core = 0;                ///< stamped into produced accesses
};

/// Produces an L2 reference stream whose per-set LRU stack-distance
/// histogram converges to the workload model's distribution — by
/// construction, not by calibration:
///
///   1. pick a set uniformly at random;
///   2. sample a stack depth d from the model's distribution;
///   3. if d <= live blocks in that set, re-touch the d-th most recently
///      used block (and move it to MRU), else touch a fresh block.
///
/// Because the MSA profiler measures exactly these per-set LRU depths, the
/// profiler's histogram over the generated stream is a consistent estimator
/// of the model — the property the test suite verifies and the property the
/// paper's entire mechanism rests on.
class SyntheticTraceGenerator {
 public:
  SyntheticTraceGenerator(const WorkloadModel& model, const GeneratorConfig& config,
                          std::uint64_t seed);

  /// Next access in the stream. Never fails; streams are unbounded.
  /// Must not be called while a next_batch() is outstanding (see
  /// truncate_batch).
  MemoryAccess next();

  /// Fills `batch` with the next `n` accesses (n in [1, kMaxSize]),
  /// advancing generator state exactly as n scalar next() calls would. An
  /// undo log is recorded so the unconsumed suffix can be rewound; until
  /// the batch is either fully consumed (the next next_batch() call) or
  /// truncated, next()/switch_model()/save_state() are off limits.
  void next_batch(AccessBatch& batch, std::uint32_t n);

  /// Rewinds the most recent next_batch() so generator state becomes
  /// exactly what `consumed` scalar next() calls from the batch's start
  /// would have produced — byte-identical rings, RNG state and block
  /// counter. The caller flushes unconsumed buffered accesses this way
  /// before any snapshot, model switch or scalar consumption, so batching
  /// never leaks into simulated state. No-op valid only once per batch.
  void truncate_batch(std::uint32_t consumed);

  /// True while a next_batch() has not yet been completed or truncated.
  bool batch_outstanding() const { return live_batch_; }

  /// Switches the workload's reuse structure mid-stream (a program phase
  /// change): the stack-distance distribution and write mix follow the new
  /// model immediately, while the resident footprint (recency lists) stays
  /// — exactly like a real phase boundary, where the old data is still in
  /// memory but the reuse pattern over it changes.
  void switch_model(const WorkloadModel& model);

  /// Rewinds the generator to the state a fresh
  /// `SyntheticTraceGenerator(model, config(), seed)` would have — new
  /// model and RNG stream, empty recency rings, block counter at zero —
  /// without freeing or reallocating the ring storage. Illegal while a
  /// batch is outstanding. Snapshot bytes after reset match a fresh
  /// generator's.
  void reset_in_place(const WorkloadModel& model, std::uint64_t seed);

  const WorkloadModel& model() const { return *model_; }
  const GeneratorConfig& config() const { return config_; }

  /// Number of distinct blocks ever touched (footprint so far).
  std::uint64_t blocks_allocated() const { return next_block_id_; }

  /// Serializes the model name, RNG state, recency rings and block counter.
  /// Restore asserts the geometry echo and re-resolves the model by name
  /// from the SPEC2000 registry (the sampler is rebuilt deterministically).
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  friend class audit::ComponentAuditor;
  friend struct GeneratorTestPeer;  ///< mutation hooks for the audit kill-tests

  /// Undo record for one batched access, applied in reverse order by
  /// truncate_batch. A fresh insert (depth == kUndoFresh) restores the
  /// head slot's prior bytes — including dead-slot bytes, so snapshots of
  /// a rewound generator stay byte-identical — while a re-touch at depth d
  /// runs the inverse rotation.
  struct UndoRecord {
    std::uint32_t set = 0;
    std::uint32_t depth = 0;
    std::uint32_t old_size = 0;
    BlockAddress overwritten = 0;
  };
  static constexpr std::uint32_t kUndoFresh = 0xFFFFFFFFu;

  BlockAddress fresh_block(std::uint32_t set);
  template <bool Record>
  MemoryAccess produce();
  void undo(const UndoRecord& record);

  const WorkloadModel* model_;  // non-owning; registry outlives generators
  GeneratorConfig config_;
  common::Rng rng_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): rebuilt deterministically from the model on restore (see save_state doc)
  common::DiscreteSampler depth_sampler_;
  // Per-set MRU-first recency lists stored as ring buffers in one flat
  // array (set s owns the ring_capacity_-sized stride starting at
  // s * ring_capacity_; logical depth d lives at (head + d) & ring_mask_).
  // A cold insert is head-decrement + one store instead of shifting the
  // whole list; a depth-d re-touch shifts only the d entries above it.
  std::vector<BlockAddress> recency_entries_;
  std::vector<std::uint32_t> recency_heads_;
  std::vector<std::uint32_t> recency_sizes_;
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived geometry (bit_ceil of max_depth); never rewound
  std::uint32_t ring_capacity_ = 0;  ///< bit_ceil(max_depth)
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived geometry, as above
  std::uint32_t ring_mask_ = 0;
  std::uint64_t next_block_id_ = 0;
  // Batch rewind bookkeeping: the RNG/block-counter state at the last
  // next_batch() plus one undo record per produced access (capacity
  // reserved up front, so steady-state batching never allocates).
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch-rewind bookkeeping; generators are quiesced (no live batch) at any snapshot
  std::vector<UndoRecord> undo_log_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch-rewind bookkeeping, as above
  std::array<std::uint64_t, 4> batch_rng_state_{};
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch-rewind bookkeeping, as above
  std::uint64_t batch_start_block_id_ = 0;
  bool live_batch_ = false;
};

}  // namespace bacp::trace
