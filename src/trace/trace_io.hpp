#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/access.hpp"

namespace bacp::trace {

/// Compact binary trace format, for capturing synthetic streams once and
/// replaying them across experiments (or feeding externally captured
/// traces into the simulator):
///
///   magic "BACPTRC1" (8 bytes) | record count (u64 LE) | records...
///   record: block address (u64 LE) | flags (u8: bit7 = write, bits 0..4 = core)
///
/// 9 bytes per access; a 10M-access trace is ~90 MB.
inline constexpr char kTraceMagic[8] = {'B', 'A', 'C', 'P', 'T', 'R', 'C', '1'};

/// Writes a whole trace. Returns false on I/O failure.
bool write_trace(const std::string& path, std::span<const MemoryAccess> accesses);

/// Reads a whole trace; std::nullopt on missing file, bad magic or a
/// truncated record stream.
std::optional<std::vector<MemoryAccess>> read_trace(const std::string& path);

}  // namespace bacp::trace
