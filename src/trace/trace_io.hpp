#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/access.hpp"

namespace bacp::trace {

/// Compact binary trace format, for capturing synthetic streams once and
/// replaying them across experiments (or feeding externally captured
/// traces into the simulator):
///
///   magic "BACPTRC1" (8 bytes) | record count (u64 LE) | records...
///   record: block address (u64 LE) | flags (u8: bit7 = write, bits 5..6
///   reserved and must be zero, bits 0..4 = core)
///
/// 9 bytes per access; a 10M-access trace is ~90 MB.
///
/// Both directions validate strictly rather than repairing: a core ID that
/// does not fit the 5-bit field is rejected at *write* time (the old
/// behavior masked it with & 0x1F, silently corrupting the core field on
/// round-trip), and a reader never trusts the header count before checking
/// it against the actual file size (a corrupt header used to drive a
/// multi-gigabyte reserve() before EOF was ever reached).
inline constexpr char kTraceMagic[8] = {'B', 'A', 'C', 'P', 'T', 'R', 'C', '1'};

/// Largest core ID the 5-bit flags field can represent.
inline constexpr std::uint32_t kTraceMaxCore = 31;

/// Writes a whole trace. Returns false on I/O failure or when any access
/// carries a core ID > kTraceMaxCore (validated before the file is touched);
/// when `error` is non-null it receives the reason.
bool write_trace(const std::string& path, std::span<const MemoryAccess> accesses,
                 std::string* error = nullptr);

/// Reads a whole trace; std::nullopt on missing file, bad magic, a header
/// count inconsistent with the file size, reserved flag bits set, or a
/// truncated record stream. When `error` is non-null it receives a
/// positioned description of the first problem.
std::optional<std::vector<MemoryAccess>> read_trace(const std::string& path,
                                                    std::string* error = nullptr);

}  // namespace bacp::trace
