#include "trace/mix.hpp"

#include "common/assert.hpp"
#include "trace/spec2000.hpp"

namespace bacp::trace {

WorkloadMix random_mix(common::Rng& rng, std::size_t suite_size, std::size_t num_cores) {
  BACP_ASSERT(suite_size > 0, "random_mix needs a non-empty suite");
  WorkloadMix mix;
  mix.workload_indices.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    mix.workload_indices.push_back(rng.next_below(suite_size));
  }
  return mix;
}

WorkloadMix mix_from_names(const std::vector<std::string>& names) {
  WorkloadMix mix;
  mix.workload_indices.reserve(names.size());
  for (const auto& name : names) mix.workload_indices.push_back(spec2000_index(name));
  return mix;
}

std::string mix_label(const WorkloadMix& mix) {
  std::string label;
  const auto& suite = spec2000_suite();
  for (std::size_t i = 0; i < mix.workload_indices.size(); ++i) {
    if (i) label += '+';
    label += suite.at(mix.workload_indices[i]).name;
  }
  return label;
}

}  // namespace bacp::trace
