#include "trace/spec2000.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bacp::trace {

namespace {

struct Params {
  const char* name;
  std::vector<ReuseComponent> components;
  double cold;
  double apki;      // L2 accesses per kilo-instruction
  double l1_hit;
  double writes;
  double base_cpi;
  double mlp;
};

WorkloadModel make(Params p) {
  WorkloadModel model;
  model.name = p.name;
  model.components = std::move(p.components);
  model.cold_fraction = p.cold;
  model.l2_apki = p.apki;
  model.l1_hit_rate = p.l1_hit;
  model.write_fraction = p.writes;
  model.base_cpi = p.base_cpi;
  model.mlp = p.mlp;
  model.validate();
  return model;
}

std::vector<WorkloadModel> build_suite() {
  std::vector<WorkloadModel> suite;
  suite.reserve(kNumSpec2000);

  // {name, {{weight, depth[, cyclic]}...}, cold, apki, l1hit, writes, base_cpi, mlp}
  //
  // Every model mixes a shallow *mixed* pool (uniform stack distances:
  // stack/locals/short reuse) with one or more *loop* pools (cyclic sweeps:
  // point mass at the loop length) plus a cold/streaming residue.
  //
  // Capacity appetites (loop lengths) follow the paper's own evidence -
  // Fig. 3 pins sixtrack (~6, cliff), applu (~10, flat after) and bzip2
  // (gradual out to ~45-48); Table III's assignments pin the rest (facerec
  // 56, mcf 24+, mgrid 40, art 16+, twolf up to 56, gcc/eon tiny). SPEC
  // CPU2000 lore fixes the intensity tiers: art/mcf/swim/equake/lucas/
  // mgrid are memory hogs (the FP streamers carry high MLP and so sustain
  // high request rates); eon/mesa/crafty/perlbmk are compute-bound.
  const bool L = true;  // loop (cyclic) component marker
  suite.push_back(make({"ammp",     {{0.35, 6}, {0.25, 13, L}, {0.20, 26, L}},                 0.20, 10.0, 0.96,  0.30, 0.85, 1.8}));
  suite.push_back(make({"applu",    {{0.30, 4}, {0.63, 10, L}},                                0.07, 6.0,  0.95,  0.25, 0.80, 4.0}));
  suite.push_back(make({"apsi",     {{0.35, 6}, {0.30, 16, L}, {0.20, 28, L}},                 0.15, 9.0,  0.955, 0.30, 0.85, 3.0}));
  suite.push_back(make({"art",      {{0.20, 6}, {0.45, 14, L}, {0.12, 36, L}},                 0.23, 40.0, 0.90,  0.20, 1.00, 2.5}));
  suite.push_back(make({"bzip2",    {{0.30, 6}, {0.20, 16, L}, {0.20, 32, L}, {0.22, 48, L}},  0.08, 18.0, 0.94,  0.35, 0.75, 1.9}));
  suite.push_back(make({"crafty",   {{0.55, 5}, {0.32, 11, L}},                                0.13, 4.0,  0.975, 0.30, 0.60, 1.6}));
  suite.push_back(make({"eon",      {{0.90, 2}, {0.08, 4, L}},                                 0.02, 1.5,  0.985, 0.40, 0.55, 1.4}));
  suite.push_back(make({"equake",   {{0.38, 4}, {0.30, 8, L}, {0.15, 24, L}},                  0.17, 28.0, 0.91,  0.20, 0.95, 3.0}));
  suite.push_back(make({"facerec",  {{0.25, 8}, {0.22, 24, L}, {0.25, 44, L}, {0.22, 58, L}},  0.06, 20.0, 0.93,  0.20, 0.85, 3.0}));
  suite.push_back(make({"fma3d",    {{0.45, 3}, {0.30, 7, L}, {0.08, 18, L}},                  0.17, 9.0,  0.95,  0.30, 0.85, 3.0}));
  suite.push_back(make({"galgel",   {{0.55, 3}, {0.22, 5, L}, {0.08, 12, L}},                  0.15, 10.0, 0.94,  0.20, 0.80, 4.0}));
  suite.push_back(make({"gap",      {{0.50, 3}, {0.25, 6, L}, {0.12, 14, L}},                  0.13, 7.0,  0.955, 0.35, 0.75, 1.8}));
  suite.push_back(make({"gcc",      {{0.70, 2}, {0.18, 5, L}},                                 0.12, 5.0,  0.965, 0.40, 0.70, 1.7}));
  suite.push_back(make({"gzip",     {{0.55, 4}, {0.33, 8, L}},                                 0.12, 6.0,  0.96,  0.35, 0.65, 1.8}));
  suite.push_back(make({"lucas",    {{0.25, 6}, {0.25, 14, L}, {0.15, 32, L}},                 0.35, 25.0, 0.92,  0.25, 0.90, 7.0}));
  suite.push_back(make({"mcf",      {{0.22, 8}, {0.26, 24, L}, {0.20, 56, L}},                 0.32, 45.0, 0.88,  0.20, 1.20, 2.0}));
  suite.push_back(make({"mesa",     {{0.50, 5}, {0.33, 12, L}},                                0.17, 3.0,  0.98,  0.35, 0.60, 1.7}));
  suite.push_back(make({"mgrid",    {{0.25, 10}, {0.34, 40, L}, {0.10, 64, L}},                0.31, 24.0, 0.925, 0.25, 0.90, 7.0}));
  suite.push_back(make({"parser",   {{0.40, 6}, {0.28, 16, L}, {0.16, 32, L}},                 0.16, 10.0, 0.95,  0.30, 0.80, 1.6}));
  suite.push_back(make({"perlbmk",  {{0.65, 4}, {0.25, 8, L}},                                 0.10, 3.0,  0.975, 0.35, 0.65, 1.6}));
  suite.push_back(make({"sixtrack", {{0.30, 4}, {0.65, 6, L}},                                 0.05, 5.0,  0.965, 0.25, 0.70, 2.2}));
  suite.push_back(make({"swim",     {{0.25, 5}, {0.25, 6, L}, {0.08, 28, L}},                  0.42, 28.0, 0.915, 0.30, 0.95, 8.0}));
  suite.push_back(make({"twolf",    {{0.38, 8}, {0.26, 16, L}, {0.24, 50, L}},                 0.12, 14.0, 0.945, 0.30, 0.85, 1.5}));
  suite.push_back(make({"vortex",   {{0.45, 6}, {0.28, 12, L}, {0.13, 24, L}},                 0.14, 6.0,  0.96,  0.35, 0.75, 1.7}));
  suite.push_back(make({"vpr",      {{0.40, 7}, {0.28, 16, L}, {0.16, 32, L}},                 0.16, 11.0, 0.95,  0.30, 0.85, 1.6}));
  suite.push_back(make({"wupwise",  {{0.50, 3}, {0.22, 6, L}, {0.14, 16, L}},                  0.14, 7.0,  0.955, 0.25, 0.75, 5.0}));

  BACP_ASSERT(suite.size() == kNumSpec2000, "suite must have 26 components");
  BACP_ASSERT(std::is_sorted(suite.begin(), suite.end(),
                             [](const WorkloadModel& a, const WorkloadModel& b) {
                               return a.name < b.name;
                             }),
              "suite must be sorted by name");
  return suite;
}

}  // namespace

const std::vector<WorkloadModel>& spec2000_suite() {
  static const std::vector<WorkloadModel> suite = build_suite();
  return suite;
}

std::size_t spec2000_index(std::string_view name) {
  const auto& suite = spec2000_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (suite[i].name == name) return i;
  }
  BACP_ASSERT(false, "unknown SPEC CPU2000 benchmark name");
  return 0;  // unreachable
}

const WorkloadModel& spec2000_by_name(std::string_view name) {
  return spec2000_suite()[spec2000_index(name)];
}

}  // namespace bacp::trace
