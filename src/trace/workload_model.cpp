#include "trace/workload_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace bacp::trace {

namespace {

/// Loop lengths are not a single number in practice: they vary across sets
/// (footprints are not set-uniform) and across phases. A loop of nominal
/// length d is therefore smeared uniformly over [lo(d), hi(d)] = d +- ~33%,
/// which turns the idealized LRU step into the steep-but-finite ramp real
/// MSA histograms show. Both the analytic projection and the generator use
/// the same smear, so profiled and analytic curves agree.
struct LoopSpan {
  bacp::WayCount lo;
  bacp::WayCount hi;
};

LoopSpan loop_span(bacp::WayCount depth) {
  const bacp::WayCount half = std::max<bacp::WayCount>(1, depth / 3);
  const bacp::WayCount lo = depth > half ? depth - half : 1;
  return {std::max<bacp::WayCount>(1, lo), depth + half};
}

}  // namespace

double WorkloadModel::miss_ratio(WayCount ways) const {
  double hit_fraction = 0.0;
  for (const auto& component : components) {
    if (component.cyclic) {
      const auto span = loop_span(component.depth);
      if (ways >= span.lo) {
        const double captured =
            std::min<double>(1.0, static_cast<double>(ways - span.lo + 1) /
                                      static_cast<double>(span.hi - span.lo + 1));
        hit_fraction += component.weight * captured;
      }
    } else {
      const double captured =
          static_cast<double>(std::min(ways, component.depth)) /
          static_cast<double>(component.depth);
      hit_fraction += component.weight * captured;
    }
  }
  return 1.0 - hit_fraction;
}

std::vector<double> WorkloadModel::stack_distance_weights(WayCount max_depth) const {
  BACP_ASSERT(max_depth >= 1, "stack_distance_weights needs depth >= 1");
  std::vector<double> weights(static_cast<std::size_t>(max_depth) + 1, 0.0);
  for (const auto& component : components) {
    if (component.cyclic) {
      // Loop: mass smeared over the loop span (depths beyond the modelled
      // stack fold into the cold bin).
      const auto span = loop_span(component.depth);
      const double per_depth =
          component.weight / static_cast<double>(span.hi - span.lo + 1);
      for (WayCount d = span.lo; d <= span.hi; ++d) {
        if (d <= max_depth) {
          weights[d - 1] += per_depth;
        } else {
          weights[max_depth] += per_depth;
        }
      }
      continue;
    }
    const double per_depth = component.weight / static_cast<double>(component.depth);
    const WayCount covered = std::min(max_depth, component.depth);
    for (WayCount d = 1; d <= covered; ++d) weights[d - 1] += per_depth;
    if (component.depth > max_depth) {
      // Reuse deeper than the modelled stack behaves as a miss at any
      // allocatable capacity: fold it into the cold bin.
      weights[max_depth] += per_depth * static_cast<double>(component.depth - max_depth);
    }
  }
  weights[max_depth] += cold_fraction;
  return weights;
}

void WorkloadModel::validate() const {
  BACP_ASSERT(!name.empty(), "workload model must be named");
  double total = cold_fraction;
  BACP_ASSERT(cold_fraction >= 0.0 && cold_fraction <= 1.0,
              "cold_fraction out of [0,1]");
  for (const auto& component : components) {
    BACP_ASSERT(component.weight > 0.0, "component weight must be positive");
    BACP_ASSERT(component.depth >= 1, "component depth must be >= 1");
    total += component.weight;
  }
  BACP_ASSERT(std::abs(total - 1.0) < 1e-9,
              "component weights + cold_fraction must sum to 1");
  BACP_ASSERT(l2_apki > 0.0, "l2_apki must be positive");
  BACP_ASSERT(l1_hit_rate >= 0.0 && l1_hit_rate < 1.0, "l1_hit_rate out of [0,1)");
  BACP_ASSERT(write_fraction >= 0.0 && write_fraction <= 1.0,
              "write_fraction out of [0,1]");
  BACP_ASSERT(base_cpi > 0.0, "base_cpi must be positive");
  BACP_ASSERT(mlp >= 1.0, "mlp must be >= 1");
}

}  // namespace bacp::trace
