#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "trace/workload_model.hpp"

namespace bacp::trace {

/// Number of SPEC CPU2000 components the paper evaluates on (Section IV:
/// "the 26 components from SPEC CPU2000").
inline constexpr std::size_t kNumSpec2000 = 26;

/// The calibrated synthetic suite. Models are ordered alphabetically by
/// name; parameters are calibrated from the paper's own evidence:
///  - Fig. 3: sixtrack's miss curve flattens near 6 dedicated ways, applu's
///    near 10 with a flat tail, bzip2 improves gradually out to ~45 ways;
///  - Table III: the Bank-aware assignments reveal each benchmark's
///    capacity appetite (facerec 56, bzip2 48, mgrid 40, mcf 24, art 16,
///    gcc 2..8, eon 3, ...);
///  - well-known SPEC CPU2000 memory behaviour for intensity (art/mcf/swim
///    are memory hogs; eon/crafty/mesa are compute-bound).
/// Returned by reference to a function-local static (immutable after first
/// use; thread-safe under C++11 magic statics).
const std::vector<WorkloadModel>& spec2000_suite();

/// Lookup by benchmark name; aborts if unknown (misspelled experiment
/// definitions should fail loudly, not silently run the wrong mix).
const WorkloadModel& spec2000_by_name(std::string_view name);

/// Index of a benchmark within spec2000_suite(); aborts if unknown.
std::size_t spec2000_index(std::string_view name);

}  // namespace bacp::trace
