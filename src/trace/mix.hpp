#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "trace/workload_model.hpp"

namespace bacp::trace {

/// An assignment of one workload per core (Section IV-A: random selection
/// *with repetition* of 8 of the 26 SPEC CPU2000 components).
struct WorkloadMix {
  std::vector<std::size_t> workload_indices;  ///< index into spec2000_suite(), per core

  std::size_t num_cores() const { return workload_indices.size(); }
};

/// Draws a uniform random mix with repetition from `suite_size` workloads,
/// matching the paper's C(26 + 8 - 1, 8)-sized state space sampling.
WorkloadMix random_mix(common::Rng& rng, std::size_t suite_size, std::size_t num_cores);

/// Builds a mix from benchmark names (used for the Table III sets); aborts
/// on unknown names.
WorkloadMix mix_from_names(const std::vector<std::string>& names);

/// Human-readable "bench0+bench1+..." label.
std::string mix_label(const WorkloadMix& mix);

}  // namespace bacp::trace
